//! pprof export of the sampled live-heap (leak) profile: a hand-rolled
//! encoder for the `perftools.profiles.Profile` protobuf (no protobuf
//! dependency — the wire format is varints and length-delimited fields),
//! plus a small in-tree parser used by `mesh-top --check-pprof` and the
//! CI schema check.
//!
//! ## Mapping the Horvitz–Thompson estimator onto pprof
//!
//! The profiler samples allocations geometrically (mean
//! `MESH_PROF_SAMPLE_BYTES` between samples) and weights each sample by
//! the expected bytes it represents, so per-site byte totals are
//! unbiased estimates. The export carries two sample values per site:
//!
//! * `inuse_objects` (unit `count`) — the **raw** number of live sampled
//!   objects at the site, deliberately unscaled (object-count upscaling
//!   would need per-object sizes the table does not keep);
//! * `inuse_space` (unit `bytes`) — the Horvitz–Thompson live-byte
//!   estimate (`alloc_bytes − freed_bytes`), already upscaled.
//!
//! `period` is the sampling rate in bytes (`period_type = space/bytes`),
//! matching what `go tool pprof` expects from heap profiles. Sites whose
//! estimate has returned to zero are dropped: this is an *inuse*
//! profile.
//!
//! Call-site chains are frame-pointer return addresses; each unique
//! address becomes a `Location`, symbolized best-effort through
//! `dladdr(3)` (mangled names — `go tool pprof`/speedscope both demangle
//! Rust/C++ on display). Addresses `dladdr` cannot place keep a
//! synthetic `0x…` function name so the profile never loses a frame.
//!
//! The output is the *uncompressed* proto; every pprof consumer accepts
//! that (gzip is optional per the format spec), and the allocator links
//! no compressor.

use super::profile_table::SiteSnapshot;
use crate::ffi;
use std::collections::HashMap;
use std::fmt;

// ---- protobuf wire primitives ------------------------------------------

const WIRE_VARINT: u64 = 0;
const WIRE_LEN: u64 = 2;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_tag(out: &mut Vec<u8>, field: u64, wire: u64) {
    put_varint(out, (field << 3) | wire);
}

/// `field: <varint>` — skipped entirely when `v == 0` (proto3 default).
fn put_u64(out: &mut Vec<u8>, field: u64, v: u64) {
    if v != 0 {
        put_tag(out, field, WIRE_VARINT);
        put_varint(out, v);
    }
}

/// `field: <len><bytes>` for a nested message or string.
fn put_len(out: &mut Vec<u8>, field: u64, bytes: &[u8]) {
    put_tag(out, field, WIRE_LEN);
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

// ---- encoder -----------------------------------------------------------

/// Interned string table: index 0 is always `""` per the format spec.
struct Strings {
    table: Vec<String>,
    index: HashMap<String, u64>,
}

impl Strings {
    fn new() -> Strings {
        let mut s = Strings {
            table: Vec::new(),
            index: HashMap::new(),
        };
        s.intern("");
        s
    }

    fn intern(&mut self, text: &str) -> u64 {
        if let Some(&i) = self.index.get(text) {
            return i;
        }
        let i = self.table.len() as u64;
        self.table.push(text.to_string());
        self.index.insert(text.to_string(), i);
        i
    }
}

/// `dladdr` lookup of one frame address: `(symbol, object)` — either may
/// be absent.
fn symbolize(addr: usize) -> (Option<String>, Option<String>) {
    let mut info = ffi::Dl_info {
        dli_fname: std::ptr::null(),
        dli_fbase: std::ptr::null_mut(),
        dli_sname: std::ptr::null(),
        dli_saddr: std::ptr::null_mut(),
    };
    let rc = unsafe { ffi::dladdr(addr as *const ffi::c_void, &mut info) };
    if rc == 0 {
        return (None, None);
    }
    let cstr = |p: *const ffi::c_char| -> Option<String> {
        if p.is_null() {
            return None;
        }
        let s = unsafe { std::ffi::CStr::from_ptr(p) };
        let s = s.to_string_lossy();
        (!s.is_empty()).then(|| s.into_owned())
    };
    (cstr(info.dli_sname), cstr(info.dli_fname))
}

/// Encodes the live sites as an uncompressed pprof `Profile`. `period`
/// is the sampler's mean bytes between samples; `time_nanos` stamps the
/// profile (pass 0 to omit). Allocates; callers hold the internal-alloc
/// guard.
pub(crate) fn encode(entries: &[SiteSnapshot], period: u64, time_nanos: u64) -> Vec<u8> {
    let mut strings = Strings::new();
    // ValueType{type=1, unit=2}
    let value_type = |strings: &mut Strings, ty: &str, unit: &str| -> Vec<u8> {
        let mut m = Vec::new();
        let t = strings.intern(ty);
        let u = strings.intern(unit);
        put_u64(&mut m, 1, t);
        put_u64(&mut m, 2, u);
        m
    };
    let st_objects = value_type(&mut strings, "inuse_objects", "count");
    let st_space = value_type(&mut strings, "inuse_space", "bytes");
    let period_type = value_type(&mut strings, "space", "bytes");

    // Locations/functions are shared across samples, keyed by address /
    // by name.
    let mut loc_ids: HashMap<usize, u64> = HashMap::new();
    let mut fn_ids: HashMap<String, u64> = HashMap::new();
    let mut locations: Vec<u8> = Vec::new();
    let mut functions: Vec<u8> = Vec::new();
    let mut samples: Vec<u8> = Vec::new();
    let mut min_addr = u64::MAX;
    let mut max_addr = 0u64;
    let mut mapping_file: Option<String> = None;

    for entry in entries {
        if entry.live_samples() == 0 && entry.live_bytes() == 0 {
            continue;
        }
        // Sample{location_id=1 (repeated), value=2 (repeated)}
        let mut sample = Vec::new();
        let frames: &[usize] = if entry.frames.is_empty() { &[0] } else { &entry.frames };
        for &addr in frames {
            let next_loc = loc_ids.len() as u64 + 1;
            let loc_id = *loc_ids.entry(addr).or_insert_with(|| {
                let (sym, obj) = if addr == 0 { (None, None) } else { symbolize(addr) };
                if mapping_file.is_none() {
                    mapping_file = obj.clone();
                }
                let name = sym.unwrap_or_else(|| format!("{addr:#x}"));
                let next_fn = fn_ids.len() as u64 + 1;
                let fn_id = *fn_ids.entry(name.clone()).or_insert_with(|| {
                    // Function{id=1, name=2, system_name=3, filename=4}
                    let mut f = Vec::new();
                    let n = strings.intern(&name);
                    put_u64(&mut f, 1, next_fn);
                    put_u64(&mut f, 2, n);
                    put_u64(&mut f, 3, n);
                    functions.push(0); // placeholder, replaced below
                    functions.pop();
                    put_len(&mut functions, 5, &f);
                    next_fn
                });
                min_addr = min_addr.min(addr as u64);
                max_addr = max_addr.max(addr as u64);
                // Line{function_id=1}
                let mut line = Vec::new();
                put_u64(&mut line, 1, fn_id);
                // Location{id=1, mapping_id=2, address=3, line=4}
                let mut loc = Vec::new();
                put_u64(&mut loc, 1, next_loc);
                put_u64(&mut loc, 2, 1);
                put_u64(&mut loc, 3, addr as u64);
                put_len(&mut loc, 4, &line);
                put_len(&mut locations, 4, &loc);
                next_loc
            });
            put_u64(&mut sample, 1, loc_id);
        }
        // Repeated int64 `value`: emitted unpacked (one tag per value),
        // which every conforming decoder accepts. Zeros must still be
        // emitted — the two values are positional — so bypass put_u64.
        for v in [entry.live_samples(), entry.live_bytes()] {
            put_tag(&mut sample, 2, WIRE_VARINT);
            put_varint(&mut sample, v);
        }
        put_len(&mut samples, 2, &sample);
    }

    // Mapping{id=1, memory_start=2, memory_limit=3, filename=5}: one
    // synthetic mapping spanning every referenced address — enough for
    // consumers that want locations attributable to *some* mapping.
    let mut mapping = Vec::new();
    put_u64(&mut mapping, 1, 1);
    if min_addr <= max_addr {
        put_u64(&mut mapping, 2, min_addr & !0xfff);
        put_u64(&mut mapping, 3, (max_addr | 0xfff) + 1);
    } else {
        put_u64(&mut mapping, 3, 0x1000);
    }
    let file = mapping_file.unwrap_or_else(|| "[mesh]".to_string());
    let file_idx = strings.intern(&file);
    put_u64(&mut mapping, 5, file_idx);

    // Profile{sample_type=1, sample=2, mapping=3, location=4, function=5,
    //         string_table=6, time_nanos=9, period_type=11, period=12}
    let mut out = Vec::new();
    put_len(&mut out, 1, &st_objects);
    put_len(&mut out, 1, &st_space);
    out.extend_from_slice(&samples);
    put_len(&mut out, 3, &mapping);
    out.extend_from_slice(&locations);
    out.extend_from_slice(&functions);
    for s in &strings.table {
        put_len(&mut out, 6, s.as_bytes());
    }
    put_u64(&mut out, 9, time_nanos);
    put_len(&mut out, 11, &period_type);
    put_u64(&mut out, 12, period);
    out
}

impl crate::global_heap::GlobalHeap {
    /// The live-heap profile as an uncompressed pprof protobuf, or
    /// `None` when profiling is off. Drains the remote-free queues first
    /// (like [`crate::global_heap::GlobalHeap::profile_json`]) so
    /// sampled frees are settled. Allocates; callers hold the
    /// internal-alloc guard and no shard locks.
    pub fn pprof_profile(&self) -> Option<Vec<u8>> {
        let t = self.telemetry.as_ref()?;
        self.drain_all();
        let entries = t.site_snapshots();
        let time_nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Some(encode(&entries, t.sample_bytes() as u64, time_nanos))
    }
}

// ---- parser ------------------------------------------------------------

/// Why a buffer failed to parse as a pprof profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PprofParseError {
    /// A varint ran past the end of the buffer (or overflowed 64 bits).
    Truncated,
    /// A length-delimited field claimed more bytes than remain.
    BadLength,
    /// An unsupported wire type appeared.
    BadWireType(u64),
    /// String-table entry 0 must be the empty string.
    BadStringTable,
    /// A sample's value count disagrees with the declared sample types.
    ValueArity { expected: usize, got: usize },
    /// A sample references a `Location` id the profile never defines.
    DanglingLocation(u64),
}

impl fmt::Display for PprofParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PprofParseError::Truncated => write!(f, "truncated varint"),
            PprofParseError::BadLength => write!(f, "length field exceeds buffer"),
            PprofParseError::BadWireType(w) => write!(f, "unsupported wire type {w}"),
            PprofParseError::BadStringTable => {
                write!(f, "string_table[0] must be the empty string")
            }
            PprofParseError::ValueArity { expected, got } => {
                write!(f, "sample has {got} values, sample_type declares {expected}")
            }
            PprofParseError::DanglingLocation(id) => {
                write!(f, "sample references undefined location {id}")
            }
        }
    }
}

/// What [`parse_pprof`] validated and summarized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PprofSummary {
    /// `(type, unit)` pairs from `sample_type`, resolved through the
    /// string table.
    pub sample_types: Vec<(String, String)>,
    /// Number of samples.
    pub samples: usize,
    /// Per-sample-type totals (summed over all samples).
    pub totals: Vec<u64>,
    /// Number of `Location` records.
    pub locations: usize,
    /// Number of `Function` records.
    pub functions: usize,
    /// Resolved function names (deduplicated, profile order).
    pub function_names: Vec<String>,
    /// `(type, unit)` of `period_type`.
    pub period_type: (String, String),
    /// Sampling period.
    pub period: u64,
    /// `time_nanos` stamp (0 when absent).
    pub time_nanos: u64,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn varint(&mut self) -> Result<u64, PprofParseError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = self.buf.get(self.pos).ok_or(PprofParseError::Truncated)?;
            self.pos += 1;
            if shift >= 64 {
                return Err(PprofParseError::Truncated);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn bytes(&mut self) -> Result<&'a [u8], PprofParseError> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).ok_or(PprofParseError::BadLength)?;
        if end > self.buf.len() {
            return Err(PprofParseError::BadLength);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Next `(field, wire)` tag, or `None` at end of buffer.
    fn tag(&mut self) -> Result<Option<(u64, u64)>, PprofParseError> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let tag = self.varint()?;
        Ok(Some((tag >> 3, tag & 7)))
    }

    /// Skips one value of the given wire type.
    fn skip(&mut self, wire: u64) -> Result<(), PprofParseError> {
        match wire {
            0 => self.varint().map(|_| ()),
            2 => self.bytes().map(|_| ()),
            1 => {
                self.pos = (self.pos + 8).min(self.buf.len());
                Ok(())
            }
            5 => {
                self.pos = (self.pos + 4).min(self.buf.len());
                Ok(())
            }
            w => Err(PprofParseError::BadWireType(w)),
        }
    }
}

/// `ValueType{type=1, unit=2}` as raw string-table indices.
fn parse_value_type(buf: &[u8]) -> Result<(u64, u64), PprofParseError> {
    let mut r = Reader { buf, pos: 0 };
    let (mut ty, mut unit) = (0, 0);
    while let Some((field, wire)) = r.tag()? {
        match (field, wire) {
            (1, 0) => ty = r.varint()?,
            (2, 0) => unit = r.varint()?,
            _ => r.skip(wire)?,
        }
    }
    Ok((ty, unit))
}

/// Parses and validates an uncompressed pprof `Profile`, returning a
/// summary. Checks the invariants the schema cannot express: string
/// table entry 0 empty, per-sample value arity matching `sample_type`,
/// and every sample's location id defined.
pub fn parse_pprof(buf: &[u8]) -> Result<PprofSummary, PprofParseError> {
    let mut r = Reader { buf, pos: 0 };
    let mut strings: Vec<String> = Vec::new();
    let mut sample_types_raw: Vec<(u64, u64)> = Vec::new();
    let mut period_type_raw = (0u64, 0u64);
    let mut samples_raw: Vec<(Vec<u64>, Vec<u64>)> = Vec::new(); // (loc ids, values)
    let mut location_ids: Vec<u64> = Vec::new();
    let mut function_names_raw: Vec<u64> = Vec::new();
    let mut summary = PprofSummary::default();
    while let Some((field, wire)) = r.tag()? {
        match (field, wire) {
            (1, 2) => sample_types_raw.push(parse_value_type(r.bytes()?)?),
            (2, 2) => {
                let mut sr = Reader { buf: r.bytes()?, pos: 0 };
                let (mut locs, mut vals) = (Vec::new(), Vec::new());
                while let Some((f, w)) = sr.tag()? {
                    match (f, w) {
                        (1, 0) => locs.push(sr.varint()?),
                        (2, 0) => vals.push(sr.varint()?),
                        (1 | 2, 2) => {
                            // Packed repeated encoding.
                            let mut pr = Reader { buf: sr.bytes()?, pos: 0 };
                            while pr.pos < pr.buf.len() {
                                let v = pr.varint()?;
                                if f == 1 {
                                    locs.push(v);
                                } else {
                                    vals.push(v);
                                }
                            }
                        }
                        _ => sr.skip(w)?,
                    }
                }
                samples_raw.push((locs, vals));
            }
            (3, 2) => {
                r.bytes()?; // mapping: presence is enough for the summary
            }
            (4, 2) => {
                let mut lr = Reader { buf: r.bytes()?, pos: 0 };
                while let Some((f, w)) = lr.tag()? {
                    match (f, w) {
                        (1, 0) => location_ids.push(lr.varint()?),
                        _ => lr.skip(w)?,
                    }
                }
            }
            (5, 2) => {
                let mut fr = Reader { buf: r.bytes()?, pos: 0 };
                summary.functions += 1;
                while let Some((f, w)) = fr.tag()? {
                    match (f, w) {
                        (2, 0) => function_names_raw.push(fr.varint()?),
                        _ => fr.skip(w)?,
                    }
                }
            }
            (6, 2) => strings.push(String::from_utf8_lossy(r.bytes()?).into_owned()),
            (9, 0) => summary.time_nanos = r.varint()?,
            (11, 2) => period_type_raw = parse_value_type(r.bytes()?)?,
            (12, 0) => summary.period = r.varint()?,
            (_, w) => r.skip(w)?,
        }
    }
    if strings.first().map(String::as_str) != Some("") {
        return Err(PprofParseError::BadStringTable);
    }
    let resolve = |i: u64| strings.get(i as usize).cloned().unwrap_or_default();
    summary.sample_types = sample_types_raw
        .iter()
        .map(|&(t, u)| (resolve(t), resolve(u)))
        .collect();
    summary.period_type = (resolve(period_type_raw.0), resolve(period_type_raw.1));
    summary.function_names = function_names_raw.iter().map(|&i| resolve(i)).collect();
    summary.locations = location_ids.len();
    summary.totals = vec![0; summary.sample_types.len()];
    let defined: std::collections::HashSet<u64> = location_ids.iter().copied().collect();
    for (locs, vals) in &samples_raw {
        if vals.len() != summary.sample_types.len() {
            return Err(PprofParseError::ValueArity {
                expected: summary.sample_types.len(),
                got: vals.len(),
            });
        }
        for (slot, v) in summary.totals.iter_mut().zip(vals) {
            *slot += v;
        }
        for id in locs {
            if !defined.contains(id) {
                return Err(PprofParseError::DanglingLocation(*id));
            }
        }
    }
    summary.samples = samples_raw.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(frames: Vec<usize>, alloc_bytes: u64, freed: u64) -> SiteSnapshot {
        let freed_all = freed >= alloc_bytes;
        SiteSnapshot {
            site: 1,
            frames,
            alloc_samples: 2,
            alloc_bytes,
            free_samples: if freed_all { 2 } else { 1 },
            freed_bytes: freed,
        }
    }

    #[test]
    fn varints_encode_and_decode() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader { buf: &buf, pos: 0 };
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let entries = vec![
            site(vec![0x0040_1000, 0x0040_2000], 8192, 0),
            site(vec![0x0040_1000], 4096, 4096), // fully freed: dropped
            site(vec![], 100, 0),              // frameless: synthetic frame
        ];
        let bytes = encode(&entries, 4096, 777);
        let p = parse_pprof(&bytes).unwrap();
        assert_eq!(
            p.sample_types,
            vec![
                ("inuse_objects".into(), "count".into()),
                ("inuse_space".into(), "bytes".into())
            ]
        );
        assert_eq!(p.period_type, ("space".into(), "bytes".into()));
        assert_eq!(p.period, 4096);
        assert_eq!(p.time_nanos, 777);
        assert_eq!(p.samples, 2, "the fully-freed site is dropped");
        assert_eq!(p.totals[1], 8192 + 100);
        assert!(p.locations >= 2);
        assert_eq!(p.functions, p.function_names.len());
        assert!(!p.function_names.is_empty());
    }

    #[test]
    fn empty_profile_still_validates() {
        let bytes = encode(&[], 4096, 0);
        let p = parse_pprof(&bytes).unwrap();
        assert_eq!(p.samples, 0);
        assert_eq!(p.sample_types.len(), 2);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_pprof(&[0x80]).is_err(), "dangling varint");
        assert!(
            parse_pprof(&[0x0a, 0xff, 0x01]).is_err(),
            "length past end of buffer"
        );
        // A valid-shaped profile with no string table fails the
        // empty-string invariant.
        let mut no_strings = Vec::new();
        put_u64(&mut no_strings, 12, 1);
        assert_eq!(parse_pprof(&no_strings), Err(PprofParseError::BadStringTable));
    }

    #[test]
    fn symbolize_resolves_own_code() {
        // A function in this very test binary: dladdr must at least find
        // the object; the symbol name is best-effort.
        let addr = symbolize_resolves_own_code as *const () as usize;
        let (_, obj) = symbolize(addr);
        assert!(obj.is_some(), "dladdr should place an address inside us");
    }
}
