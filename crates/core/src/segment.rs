//! Segments: independently file-backed windows of the arena reservation.
//!
//! The paper's meshable arena (§4.4.1) is one fixed-size `MAP_SHARED`
//! mapping of one memory file; outgrowing it was fatal. The segmented
//! arena instead reserves `max_heap_bytes` of *virtual* space once
//! ([`crate::sys::reserve_region`]) and populates it with **segments**:
//! contiguous page ranges each backed by their own [`MemFile`], created on
//! demand when span allocation misses every existing segment and retired
//! (unmapped, file closed, range recycled) when none of their pages are
//! handed out or dirty. Meshing only ever needs "remap a virtual span onto
//! a file offset", which works identically across segments — a virtual
//! span in one segment may alias another segment's file.
//!
//! Page indices stay global (relative to the reservation base), so the
//! lock-free pointer→page arithmetic and the page map are untouched by
//! growth; only *file* offsets are per-segment. All structures here are
//! guarded by the arena leaf lock (see DESIGN.md "Segment lifecycle").

use crate::span::Span;
use crate::sys::MemFile;
use std::collections::BTreeMap;

/// Monotonically increasing identifier of a segment within its arena.
/// Never reused, even when a retired segment's page range is.
pub type SegmentId = u64;

/// A point-in-time snapshot of one segment's accounting, exposed through
/// [`crate::Mesh::segment_stats`] for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Creation-ordered id (0 = the initial segment).
    pub id: SegmentId,
    /// First page of the segment within the reservation.
    pub start_page: u32,
    /// Segment length in pages.
    pub pages: u32,
    /// Pages never yet carved from the bump frontier.
    pub fresh_pages: u32,
    /// Physical pages currently committed in this segment's file.
    pub committed_pages: usize,
    /// Pages sitting in this segment's dirty bins.
    pub dirty_pages: usize,
    /// Pages sitting in this segment's clean bins.
    pub clean_pages: usize,
    /// Pages handed out as spans and not yet returned to a bin.
    pub outstanding_pages: usize,
    /// Whether the segment could be retired right now (always false for
    /// the initial segment, which is never retired).
    pub retirable: bool,
}

/// One file-backed window of the arena reservation, with its own bump
/// frontier and dirty/clean span bins (the per-segment half of §4.4.1).
#[derive(Debug)]
pub(crate) struct Segment {
    id: SegmentId,
    start: u32,
    pages: u32,
    file: MemFile,
    /// Pages carved from the fresh frontier so far (relative count).
    frontier: u32,
    /// Clean spans binned by exact page count; offsets are global.
    clean: BTreeMap<u32, Vec<u32>>,
    /// Dirty spans binned by exact page count; offsets are global.
    dirty: BTreeMap<u32, Vec<u32>>,
    dirty_pages: usize,
    clean_pages: usize,
    /// Pages handed out as spans (or held as mesh aliases) and not yet
    /// returned to a bin. A segment with zero outstanding and zero dirty
    /// pages holds no live data and may retire.
    outstanding_pages: usize,
    committed_pages: usize,
}

impl Segment {
    pub fn new(id: SegmentId, start: u32, pages: u32, file: MemFile) -> Segment {
        Segment {
            id,
            start,
            pages,
            file,
            frontier: 0,
            clean: BTreeMap::new(),
            dirty: BTreeMap::new(),
            dirty_pages: 0,
            clean_pages: 0,
            outstanding_pages: 0,
            committed_pages: 0,
        }
    }

    #[inline]
    pub fn id(&self) -> SegmentId {
        self.id
    }

    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    #[inline]
    pub fn pages(&self) -> u32 {
        self.pages
    }

    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.pages
    }

    #[inline]
    pub fn file(&self) -> &MemFile {
        &self.file
    }

    /// Swaps in a new backing file of identical length (fork
    /// privatization: the child re-backs each segment with a private
    /// copy). Returns the old file; dropping it closes the descriptor.
    pub fn replace_file(&mut self, file: MemFile) -> MemFile {
        debug_assert_eq!(file.len(), self.file.len());
        std::mem::replace(&mut self.file, file)
    }

    #[inline]
    pub fn contains_page(&self, page: u32) -> bool {
        page >= self.start && page < self.end()
    }

    /// Byte offset of global page `page` within this segment's file.
    #[inline]
    pub fn file_offset_of_page(&self, page: u32) -> usize {
        debug_assert!(self.contains_page(page));
        (page - self.start) as usize * crate::size_classes::PAGE_SIZE
    }

    #[inline]
    pub fn outstanding_pages(&self) -> usize {
        self.outstanding_pages
    }

    #[inline]
    pub fn committed_pages(&self) -> usize {
        self.committed_pages
    }

    /// Whether every page is back and clean: nothing handed out, nothing
    /// dirty. (The caller additionally never retires the initial segment.)
    #[inline]
    pub fn is_empty_of_live_data(&self) -> bool {
        self.outstanding_pages == 0 && self.dirty_pages == 0
    }

    // ----- span hand-out -------------------------------------------------

    /// Pops an exact-length dirty span, if any (dirty reuse, §4.4.1).
    pub fn take_dirty_exact(&mut self, pages: u32) -> Option<u32> {
        let list = self.dirty.get_mut(&pages)?;
        let offset = list.pop().expect("bins never hold empty lists");
        if list.is_empty() {
            self.dirty.remove(&pages);
        }
        self.dirty_pages -= pages as usize;
        self.outstanding_pages += pages as usize;
        Some(offset)
    }

    /// Length of the smallest clean bin holding spans of at least `pages`
    /// pages, if any.
    pub fn smallest_clean_at_least(&self, pages: u32) -> Option<u32> {
        self.clean.range(pages..).next().map(|(&len, _)| len)
    }

    /// Takes a clean span from the `len` bin, splitting the tail back into
    /// the clean bins and committing the handed-out head.
    pub fn take_clean(&mut self, len: u32, pages: u32) -> Span {
        let list = self.clean.get_mut(&len).expect("bin just observed");
        let offset = list.pop().expect("bins never hold empty lists");
        if list.is_empty() {
            self.clean.remove(&len);
        }
        self.clean_pages -= len as usize;
        let (head, tail) = Span::new(offset, len).split(pages);
        if let Some(tail) = tail {
            self.park_clean(tail);
        }
        self.outstanding_pages += pages as usize;
        self.committed_pages += pages as usize;
        head
    }

    /// Carves fresh pages from the bump frontier, if room remains.
    pub fn take_fresh(&mut self, pages: u32) -> Option<u32> {
        if self.frontier + pages > self.pages {
            return None;
        }
        let offset = self.start + self.frontier;
        self.frontier += pages;
        self.outstanding_pages += pages as usize;
        self.committed_pages += pages as usize;
        Some(offset)
    }

    // ----- span return ---------------------------------------------------

    /// Returns an outstanding span to the dirty bins (still committed).
    pub fn free_dirty(&mut self, span: Span) {
        debug_assert!(self.contains_page(span.offset) && span.end() <= self.end());
        self.dirty.entry(span.pages).or_default().push(span.offset);
        self.dirty_pages += span.pages as usize;
        self.outstanding_pages -= span.pages as usize;
    }

    /// Returns an outstanding span (whose pages were already released)
    /// to the clean bins.
    pub fn free_clean(&mut self, span: Span) {
        self.outstanding_pages -= span.pages as usize;
        self.park_clean(span);
    }

    /// Files a span under clean without touching outstanding accounting
    /// (purge path: the span was in the dirty bins, not outstanding).
    pub fn park_clean(&mut self, span: Span) {
        debug_assert!(self.contains_page(span.offset) && span.end() <= self.end());
        self.clean.entry(span.pages).or_default().push(span.offset);
        self.clean_pages += span.pages as usize;
    }

    /// Drains every dirty span (for a purge); dirty accounting drops to
    /// zero and the caller re-files the spans clean after releasing them.
    pub fn take_all_dirty(&mut self) -> Vec<Span> {
        let dirty = std::mem::take(&mut self.dirty);
        self.dirty_pages = 0;
        dirty
            .iter()
            .flat_map(|(&len, offsets)| offsets.iter().map(move |&o| Span::new(o, len)))
            .collect()
    }

    /// Records `pages` physical pages of this segment released to the OS.
    pub fn note_release(&mut self, pages: usize) {
        debug_assert!(self.committed_pages >= pages);
        self.committed_pages -= pages;
    }

    pub fn stats(&self, retirable: bool) -> SegmentStats {
        SegmentStats {
            id: self.id,
            start_page: self.start,
            pages: self.pages,
            fresh_pages: self.pages - self.frontier,
            committed_pages: self.committed_pages,
            dirty_pages: self.dirty_pages,
            clean_pages: self.clean_pages,
            outstanding_pages: self.outstanding_pages,
            retirable,
        }
    }
}

/// The ordered segment table plus the free-range ledger of the virtual
/// reservation. Guarded by the arena leaf lock.
#[derive(Debug)]
pub(crate) struct SegmentTable {
    /// Active segments, sorted by `start`.
    segments: Vec<Segment>,
    /// Retired page ranges `(start, pages)` available for reuse, sorted by
    /// start and coalesced.
    free_ranges: Vec<(u32, u32)>,
    /// First never-assigned page of the reservation tail.
    next_page: u32,
    /// Total reservation size in pages (the hard cap).
    cap_pages: u32,
    next_id: SegmentId,
}

impl SegmentTable {
    pub fn new(cap_pages: u32) -> SegmentTable {
        SegmentTable {
            segments: Vec::new(),
            free_ranges: Vec::new(),
            next_page: 0,
            cap_pages,
            next_id: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Total pages currently mapped (sum of active segment lengths).
    pub fn mapped_pages(&self) -> usize {
        self.segments.iter().map(|s| s.pages as usize).sum()
    }

    /// Claims the next monotonic segment id.
    pub fn allocate_id(&mut self) -> SegmentId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Ids handed out so far (== segments ever created).
    pub fn ids_created(&self) -> u64 {
        self.next_id
    }

    pub fn iter(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter()
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Segment> {
        self.segments.iter_mut()
    }

    #[inline]
    pub fn get(&self, idx: usize) -> &Segment {
        &self.segments[idx]
    }

    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> &mut Segment {
        &mut self.segments[idx]
    }

    /// Index of the segment containing global page `page`.
    pub fn index_of_page(&self, page: u32) -> Option<usize> {
        let idx = self
            .segments
            .partition_point(|s| s.end() <= page);
        let seg = self.segments.get(idx)?;
        seg.contains_page(page).then_some(idx)
    }

    /// Segment containing `page`.
    pub fn seg_of_page(&self, page: u32) -> Option<&Segment> {
        self.index_of_page(page).map(|i| &self.segments[i])
    }

    /// Inserts a segment (keeping start order); returns its index.
    pub fn insert(&mut self, seg: Segment) -> usize {
        let idx = self.segments.partition_point(|s| s.start < seg.start);
        self.segments.insert(idx, seg);
        idx
    }

    /// Removes the segment at `idx`, returning it.
    pub fn remove(&mut self, idx: usize) -> Segment {
        self.segments.remove(idx)
    }

    /// Claims a page range for a new segment: `desired` pages if any free
    /// range or the reservation tail has room, else any range of at least
    /// `min` pages (a final, smaller segment). `None` means the hard cap
    /// is truly exhausted for this request.
    pub fn take_range(&mut self, desired: u32, min: u32) -> Option<(u32, u32)> {
        debug_assert!(min > 0 && desired >= min);
        // A retired range big enough for a full segment: split it.
        if let Some(i) = self.free_ranges.iter().position(|&(_, len)| len >= desired) {
            let (start, len) = self.free_ranges[i];
            if len == desired {
                self.free_ranges.remove(i);
            } else {
                self.free_ranges[i] = (start + desired, len - desired);
            }
            return Some((start, desired));
        }
        // The untouched tail of the reservation.
        let tail = self.cap_pages - self.next_page;
        if tail >= desired {
            let start = self.next_page;
            self.next_page += desired;
            return Some((start, desired));
        }
        // Partial fits: the largest retired range, or the whole tail, as a
        // final undersized segment — growth degrades gracefully at the cap.
        if let Some((i, &(start, len))) = self
            .free_ranges
            .iter()
            .enumerate()
            .filter(|(_, &(_, len))| len >= min)
            .max_by_key(|(_, &(_, len))| len)
        {
            self.free_ranges.remove(i);
            return Some((start, len));
        }
        if tail >= min {
            let start = self.next_page;
            self.next_page = self.cap_pages;
            return Some((start, tail));
        }
        None
    }

    /// Returns a page range to the free ledger, coalescing with neighbours
    /// and with the reservation tail.
    pub fn return_range(&mut self, start: u32, pages: u32) {
        let end = start + pages;
        let idx = self.free_ranges.partition_point(|&(s, _)| s < start);
        self.free_ranges.insert(idx, (start, pages));
        // Merge with successor, then predecessor.
        if idx + 1 < self.free_ranges.len() && end == self.free_ranges[idx + 1].0 {
            self.free_ranges[idx].1 += self.free_ranges[idx + 1].1;
            self.free_ranges.remove(idx + 1);
        }
        if idx > 0 {
            let (ps, pl) = self.free_ranges[idx - 1];
            if ps + pl == start {
                self.free_ranges[idx - 1].1 += self.free_ranges[idx].1;
                self.free_ranges.remove(idx);
            }
        }
        // If the last free range touches the tail, give it back entirely.
        if let Some(&(s, l)) = self.free_ranges.last() {
            if s + l == self.next_page {
                self.free_ranges.pop();
                self.next_page = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_classes::PAGE_SIZE;

    fn seg(id: SegmentId, start: u32, pages: u32) -> Segment {
        Segment::new(id, start, pages, MemFile::create(pages as usize * PAGE_SIZE).unwrap())
    }

    #[test]
    fn segment_handout_and_return_accounting() {
        let mut s = seg(0, 0, 16);
        let a = s.take_fresh(4).unwrap();
        assert_eq!(a, 0);
        assert_eq!(s.outstanding_pages(), 4);
        assert_eq!(s.committed_pages(), 4);
        s.free_dirty(Span::new(a, 4));
        assert_eq!(s.outstanding_pages(), 0);
        assert_eq!(s.stats(false).dirty_pages, 4);
        assert!(!s.is_empty_of_live_data(), "dirty pages block retirement");
        let b = s.take_dirty_exact(4).unwrap();
        assert_eq!(b, a, "dirty reuse returns the hot span");
        s.note_release(4);
        s.free_clean(Span::new(b, 4));
        assert!(s.is_empty_of_live_data());
        assert_eq!(s.committed_pages(), 0);
    }

    #[test]
    fn clean_split_parks_tail() {
        let mut s = seg(0, 8, 16);
        let off = s.take_fresh(6).unwrap();
        s.note_release(6);
        s.free_clean(Span::new(off, 6));
        assert_eq!(s.smallest_clean_at_least(2), Some(6));
        let head = s.take_clean(6, 2);
        assert_eq!(head, Span::new(8, 2));
        assert_eq!(s.smallest_clean_at_least(1), Some(4), "tail parked clean");
        assert_eq!(s.committed_pages(), 2);
    }

    #[test]
    fn table_lookup_insert_remove() {
        let mut t = SegmentTable::new(1024);
        let (s0, l0) = t.take_range(64, 1).unwrap();
        let (s1, l1) = t.take_range(64, 1).unwrap();
        assert_eq!((s0, l0), (0, 64));
        assert_eq!((s1, l1), (64, 64));
        let id0 = t.allocate_id();
        let id1 = t.allocate_id();
        assert!(id1 > id0, "ids are monotonic");
        t.insert(seg(id1, s1, l1));
        t.insert(seg(id0, s0, l0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.index_of_page(0), Some(0));
        assert_eq!(t.index_of_page(63), Some(0));
        assert_eq!(t.index_of_page(64), Some(1));
        assert_eq!(t.index_of_page(128), None, "tail pages belong to no segment");
        let removed = t.remove(1);
        assert_eq!(removed.start(), 64);
        assert_eq!(t.index_of_page(64), None);
    }

    #[test]
    fn range_reuse_and_coalescing() {
        let mut t = SegmentTable::new(256);
        let a = t.take_range(64, 1).unwrap();
        let b = t.take_range(64, 1).unwrap();
        let c = t.take_range(64, 1).unwrap();
        // Retire the middle range: reused exactly by the next request.
        t.return_range(b.0, b.1);
        assert_eq!(t.take_range(64, 1), Some(b));
        // Retire b and c; c touches the tail so both coalesce back into it,
        // leaving room for one 128-page segment.
        t.return_range(c.0, c.1);
        t.return_range(b.0, b.1);
        assert_eq!(t.take_range(192, 1), Some((64, 192)));
        let _ = a;
    }

    #[test]
    fn cap_degrades_to_partial_then_exhausts() {
        let mut t = SegmentTable::new(100);
        assert_eq!(t.take_range(64, 8), Some((0, 64)));
        // Tail of 36 < desired 64 but ≥ min: final undersized segment.
        assert_eq!(t.take_range(64, 8), Some((64, 36)));
        assert_eq!(t.take_range(64, 8), None, "cap exhausted");
        // Returning the final segment makes the tail whole again.
        t.return_range(64, 36);
        assert_eq!(t.take_range(64, 36), Some((64, 36)));
    }
}
