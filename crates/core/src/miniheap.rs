//! MiniHeaps: per-span metadata (§4.1).
//!
//! A MiniHeap tracks one *physical* span — its allocation bitmap, object
//! size and count, and the start of every *virtual* span mapped onto it
//! (one before meshing, several after). MiniHeaps are *attached* (owned by
//! a thread-local heap, serving new allocations) or *detached* (owned by
//! the global heap, binned by occupancy and eligible for meshing).
//!
//! MiniHeaps live in a [`Slab`] — the analog of the reference
//! implementation's internal allocator — and are addressed by stable
//! [`MiniHeapId`]s, which also serve as the payload of the arena's
//! page→MiniHeap table (§4.4.2).

use crate::bitmap::AtomicBitmap;
use crate::size_classes::SizeClass;
use crate::span::Span;
use std::num::NonZeroU32;

/// Stable identifier of a MiniHeap within its heap's [`Slab`].
///
/// Internally `index + 1`, so the zero bit-pattern stays free as the
/// page-table's "no MiniHeap" sentinel (§4.4.4's invalid-free detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MiniHeapId(NonZeroU32);

impl MiniHeapId {
    /// Reconstructs an id from its raw non-zero representation.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        MiniHeapId(NonZeroU32::new(raw).expect("MiniHeapId raw value must be non-zero"))
    }

    /// The raw non-zero representation (used in the page table).
    #[inline]
    pub fn to_raw(self) -> u32 {
        self.0.get()
    }

    #[inline]
    fn index(self) -> usize {
        (self.0.get() - 1) as usize
    }
}

/// Ownership state of a MiniHeap (§4.1: attached vs detached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachState {
    /// Owned by the global heap; binned and meshable.
    Detached,
    /// Owned by the thread-local heap with this token; new objects are
    /// only allocated out of attached MiniHeaps.
    Attached(u64),
}

/// Sentinel for "not currently in any occupancy bin".
pub(crate) const NOT_BINNED: u8 = u8::MAX;

/// Metadata for one physical span (§4.1).
#[derive(Debug)]
pub struct MiniHeap {
    /// Object size in bytes (size-class size, or the rounded request for
    /// large objects).
    object_size: u32,
    /// Number of object slots.
    object_count: u16,
    /// Size class, or `None` for large-object singletons (§4.4.3).
    size_class: Option<SizeClass>,
    /// Allocation bitmap: bit per slot (§4.1).
    bitmap: AtomicBitmap,
    /// Every virtual span mapped onto this physical span. The first entry
    /// is the *primary* span, whose page range equals the physical file
    /// range; the rest were acquired by meshing.
    virtual_spans: Vec<Span>,
    /// Attachment state.
    state: AttachState,
    /// Occupancy bin index while detached (`NOT_BINNED` otherwise).
    pub(crate) bin: u8,
    /// Position inside the bin's vector, for O(1) removal.
    pub(crate) bin_slot: u32,
    /// Large-object singleton whose span carries a trailing hardened-mode
    /// guard page: the last page is not part of the object and must be
    /// unprotected/verified before the span is released.
    guarded: bool,
    /// Byte offset of the object's start within the span — non-zero only
    /// for over-aligned large objects, whose first aligned address sits
    /// past the span head. Lets hardened mode pin `free` to the exact
    /// address malloc returned.
    start_off: u32,
}

impl MiniHeap {
    /// Creates a detached MiniHeap for a size-classed span.
    pub fn new_small(class: SizeClass, span: Span) -> Self {
        debug_assert_eq!(span.pages as usize, class.span_pages());
        MiniHeap {
            object_size: class.object_size() as u32,
            object_count: class.object_count() as u16,
            size_class: Some(class),
            bitmap: AtomicBitmap::new(class.object_count()),
            virtual_spans: vec![span],
            state: AttachState::Detached,
            bin: NOT_BINNED,
            bin_slot: 0,
            guarded: false,
            start_off: 0,
        }
    }

    /// Creates the singleton MiniHeap accounting for one large object
    /// (§4.4.3): one slot covering the whole page-rounded span.
    pub fn new_large(span: Span) -> Self {
        let bitmap = AtomicBitmap::new(1);
        bitmap.try_set(0);
        MiniHeap {
            object_size: span.byte_len() as u32,
            object_count: 1,
            size_class: None,
            bitmap,
            virtual_spans: vec![span],
            state: AttachState::Detached,
            bin: NOT_BINNED,
            bin_slot: 0,
            guarded: false,
            start_off: 0,
        }
    }

    /// Creates a large-object singleton whose span ends with a hardened
    /// guard page: the object occupies `byte_len - PAGE_SIZE`, so
    /// `usable_size`/`realloc` see the true object size and any linear
    /// overflow lands on the guard.
    pub fn new_large_guarded(span: Span) -> Self {
        debug_assert!(span.pages >= 2, "guarded span needs object + guard pages");
        let bitmap = AtomicBitmap::new(1);
        bitmap.try_set(0);
        MiniHeap {
            object_size: (span.byte_len() - crate::size_classes::PAGE_SIZE) as u32,
            object_count: 1,
            size_class: None,
            bitmap,
            virtual_spans: vec![span],
            state: AttachState::Detached,
            bin: NOT_BINNED,
            bin_slot: 0,
            guarded: true,
            start_off: 0,
        }
    }

    /// Whether this large-object span carries a trailing guard page.
    #[inline]
    pub fn is_guarded(&self) -> bool {
        self.guarded
    }

    /// Records the object's byte offset within the span (over-aligned
    /// large objects only; see `start_off`).
    #[inline]
    pub fn set_large_start_off(&mut self, off: usize) {
        debug_assert!(self.is_large());
        debug_assert!(off < self.object_size as usize);
        self.start_off = off as u32;
    }

    /// Byte offset of the object's start within the span (0 unless the
    /// object is over-aligned).
    #[inline]
    pub fn large_start_off(&self) -> usize {
        self.start_off as usize
    }

    /// Object size in bytes.
    #[inline]
    pub fn object_size(&self) -> usize {
        self.object_size as usize
    }

    /// Number of object slots.
    #[inline]
    pub fn object_count(&self) -> usize {
        self.object_count as usize
    }

    /// The size class, or `None` for large objects.
    #[inline]
    pub fn size_class(&self) -> Option<SizeClass> {
        self.size_class
    }

    /// Whether this is a large-object singleton.
    #[inline]
    pub fn is_large(&self) -> bool {
        self.size_class.is_none()
    }

    /// The allocation bitmap.
    #[inline]
    pub fn bitmap(&self) -> &AtomicBitmap {
        &self.bitmap
    }

    /// Number of live objects (set bits).
    #[inline]
    pub fn in_use(&self) -> usize {
        self.bitmap.in_use()
    }

    /// Occupancy in `[0, 1]`.
    #[inline]
    pub fn occupancy(&self) -> f64 {
        self.in_use() as f64 / self.object_count as f64
    }

    /// The primary span: its page range equals the physical file range.
    #[inline]
    pub fn span(&self) -> Span {
        self.virtual_spans[0]
    }

    /// Every virtual span aliasing this physical span (primary first).
    #[inline]
    pub fn virtual_spans(&self) -> &[Span] {
        &self.virtual_spans
    }

    /// Number of virtual spans (1 = never meshed).
    #[inline]
    pub fn span_count(&self) -> usize {
        self.virtual_spans.len()
    }

    /// Whether this MiniHeap has been meshed (aliases exist).
    #[inline]
    pub fn is_meshed(&self) -> bool {
        self.virtual_spans.len() > 1
    }

    /// Appends the virtual spans of a meshed-away source MiniHeap.
    pub(crate) fn absorb_spans(&mut self, spans: &[Span]) {
        self.virtual_spans.extend_from_slice(spans);
    }

    /// Takes the non-primary spans out (used when the MiniHeap dies and
    /// aliases are restored to identity mappings).
    pub(crate) fn take_alias_spans(&mut self) -> Vec<Span> {
        self.virtual_spans.split_off(1)
    }

    /// Current attachment state.
    #[inline]
    pub fn state(&self) -> AttachState {
        self.state
    }

    /// Whether attached to any thread-local heap.
    #[inline]
    pub fn is_attached(&self) -> bool {
        matches!(self.state, AttachState::Attached(_))
    }

    pub(crate) fn set_state(&mut self, state: AttachState) {
        self.state = state;
    }

    /// Maps an arena *page* to the slot index of the object containing
    /// `addr`, given the arena base address. Returns `None` if `addr` is
    /// not inside any of this MiniHeap's virtual spans.
    pub fn slot_of_addr(&self, arena_base: usize, addr: usize) -> Option<usize> {
        for vs in &self.virtual_spans {
            let start = arena_base + vs.byte_offset();
            let end = start + vs.byte_len();
            if addr >= start && addr < end {
                return Some((addr - start) / self.object_size as usize);
            }
        }
        None
    }

    /// Address of slot `slot` within the *primary* span.
    pub fn primary_slot_addr(&self, arena_base: usize, slot: usize) -> usize {
        debug_assert!(slot < self.object_count as usize);
        arena_base + self.span().byte_offset() + slot * self.object_size as usize
    }
}

/// Slab of MiniHeaps with stable ids and O(1) insert/remove — the analog of
/// the reference implementation's internal MiniHeap allocator (§4.4.2).
#[derive(Debug, Default)]
pub struct Slab {
    slots: Vec<Option<MiniHeap>>,
    free: Vec<u32>,
    live: usize,
}

impl Slab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab::default()
    }

    /// Number of live MiniHeaps.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab holds no MiniHeaps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a MiniHeap, returning its stable id.
    pub fn insert(&mut self, mh: MiniHeap) -> MiniHeapId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none());
            self.slots[idx as usize] = Some(mh);
            MiniHeapId::from_raw(idx + 1)
        } else {
            self.slots.push(Some(mh));
            MiniHeapId::from_raw(self.slots.len() as u32)
        }
    }

    /// Removes and returns the MiniHeap with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: MiniHeapId) -> MiniHeap {
        let mh = self.slots[id.index()]
            .take()
            .expect("removing a dead MiniHeapId");
        self.free.push(id.index() as u32);
        self.live -= 1;
        mh
    }

    /// Borrows the MiniHeap with id `id`, or `None` if it is dead.
    #[inline]
    pub fn get(&self, id: MiniHeapId) -> Option<&MiniHeap> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Mutably borrows the MiniHeap with id `id`, or `None` if it is dead.
    #[inline]
    pub fn get_mut(&mut self, id: MiniHeapId) -> Option<&mut MiniHeap> {
        self.slots.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    /// Iterates over `(id, &MiniHeap)` for all live MiniHeaps.
    pub fn iter(&self) -> impl Iterator<Item = (MiniHeapId, &MiniHeap)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref().map(|mh| (MiniHeapId::from_raw(i as u32 + 1), mh))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_classes::SizeClass;

    fn small_mh() -> MiniHeap {
        let class = SizeClass::for_size(256).unwrap();
        MiniHeap::new_small(class, Span::new(0, class.span_pages() as u32))
    }

    #[test]
    fn id_roundtrip_and_sentinel() {
        let id = MiniHeapId::from_raw(7);
        assert_eq!(id.to_raw(), 7);
        assert_eq!(std::mem::size_of::<Option<MiniHeapId>>(), 4, "niche optimization");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_raw_id_panics() {
        MiniHeapId::from_raw(0);
    }

    #[test]
    fn small_miniheap_geometry() {
        let mh = small_mh();
        assert_eq!(mh.object_size(), 256);
        assert_eq!(mh.object_count(), 16);
        assert!(!mh.is_large());
        assert!(!mh.is_meshed());
        assert_eq!(mh.in_use(), 0);
        assert_eq!(mh.occupancy(), 0.0);
    }

    #[test]
    fn large_miniheap_is_born_occupied() {
        let mh = MiniHeap::new_large(Span::new(5, 10));
        assert!(mh.is_large());
        assert_eq!(mh.object_count(), 1);
        assert_eq!(mh.object_size(), 10 * 4096);
        assert_eq!(mh.in_use(), 1);
        assert_eq!(mh.occupancy(), 1.0);
    }

    #[test]
    fn slot_of_addr_primary_and_alias() {
        let mut mh = small_mh();
        let base = 0x7000_0000;
        assert_eq!(mh.slot_of_addr(base, base), Some(0));
        assert_eq!(mh.slot_of_addr(base, base + 256 * 3 + 10), Some(3));
        assert_eq!(mh.slot_of_addr(base, base + 4096), None);
        mh.absorb_spans(&[Span::new(9, 1)]);
        assert!(mh.is_meshed());
        let alias_addr = base + 9 * 4096 + 256 * 5;
        assert_eq!(mh.slot_of_addr(base, alias_addr), Some(5));
        assert_eq!(mh.primary_slot_addr(base, 5), base + 256 * 5);
    }

    #[test]
    fn take_alias_spans_leaves_primary() {
        let mut mh = small_mh();
        mh.absorb_spans(&[Span::new(3, 1), Span::new(4, 1)]);
        let aliases = mh.take_alias_spans();
        assert_eq!(aliases, vec![Span::new(3, 1), Span::new(4, 1)]);
        assert_eq!(mh.virtual_spans(), &[Span::new(0, 1)]);
        assert!(!mh.is_meshed());
    }

    #[test]
    fn attach_state_transitions() {
        let mut mh = small_mh();
        assert_eq!(mh.state(), AttachState::Detached);
        mh.set_state(AttachState::Attached(42));
        assert!(mh.is_attached());
        mh.set_state(AttachState::Detached);
        assert!(!mh.is_attached());
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = Slab::new();
        assert!(slab.is_empty());
        let a = slab.insert(small_mh());
        let b = slab.insert(small_mh());
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert!(slab.get(a).is_some());
        slab.remove(a);
        assert!(slab.get(a).is_none());
        assert_eq!(slab.len(), 1);
        // Freed slot is recycled but b's id stays valid.
        let c = slab.insert(small_mh());
        assert_eq!(c, a, "slab recycles slots");
        assert!(slab.get(b).is_some());
        assert_eq!(slab.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "dead MiniHeapId")]
    fn slab_double_remove_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(small_mh());
        slab.remove(a);
        slab.remove(a);
    }
}
