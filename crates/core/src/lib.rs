//! # mesh-core
//!
//! A from-scratch Rust implementation of **Mesh** — *Compacting Memory
//! Management for C/C++ Applications* (Powers, Tench, Berger, McGregor;
//! PLDI 2019).
//!
//! Mesh is a drop-in `malloc` replacement that performs **compaction
//! without relocation**: it finds pairs of spans whose live objects occupy
//! disjoint slot offsets and *meshes* them — copying one span's objects
//! into the other's holes and remapping both virtual spans onto a single
//! physical span, then returning the freed physical span to the OS. No
//! application pointer ever changes, so the technique works for hostile,
//! address-exposing workloads where garbage-collection-style compaction is
//! impossible.
//!
//! The implementation mirrors the paper's architecture:
//!
//! | Paper | Module |
//! |---|---|
//! | §4.1 MiniHeaps | [`miniheap`] |
//! | §4.2 Shuffle vectors | [`shuffle_vector`] |
//! | §4.3 Thread-local heaps | [`ThreadHeap`] |
//! | §4.4 Global heap (sharded per size class) | [`Mesh`] |
//! | §4.4.1 Meshable arena (segmented, grows on demand) | [`arena`], `segment` (internal), [`sys`] |
//! | §4.4.4 Lock-free free routing | `page_map`, `remote_free` (internal) |
//! | §3.3/§4.5 SplitMesher & meshing | [`meshing`] |
//! | §4.5 Background meshing thread | `mesher` (internal), [`MeshConfig::background_meshing`] |
//! | §4.5.2 Write barrier | [`barrier`] |
//! | mesh-insight telemetry (this repo's extension) | [`telemetry`], [`Mesh::prom_text`], [`Mesh::profile_json`] |
//!
//! Unlike the seed implementation's single global mutex, the global heap
//! is sharded: each size class has its own lock and a lock-free MPSC
//! remote-free queue, and meshing can run on a background thread — see
//! DESIGN.md for the locking discipline.
//!
//! The paper's deployment vehicle lives in the sibling `mesh-abi` crate:
//! `cargo build --release` emits `target/release/libmesh.so`, and
//! `LD_PRELOAD=libmesh.so <any C program>` runs that program on this
//! heap ([`with_internal_alloc`] / [`Mesh::fork_prepare`] are the pieces
//! of this crate that interposition layer drives; DESIGN.md "ABI &
//! bootstrap" documents the protocols).
//!
//! ## Quickstart
//!
//! ```
//! use mesh_core::{Mesh, MeshConfig};
//!
//! # fn main() -> Result<(), mesh_core::MeshError> {
//! let mesh = Mesh::new(MeshConfig::default().seed(42).arena_bytes(64 << 20))?;
//!
//! // Allocate a few thousand small objects, then free most of them,
//! // leaving fragmented spans behind…
//! let ptrs: Vec<*mut u8> = (0..4096).map(|_| mesh.malloc(128)).collect();
//! for (i, &p) in ptrs.iter().enumerate() {
//!     if i % 8 != 0 {
//!         unsafe { mesh.free(p) };
//!     }
//! }
//!
//! // …and compact: physically merge spans with disjoint live objects.
//! let before = mesh.heap_bytes();
//! let summary = mesh.mesh_now();
//! assert!(mesh.heap_bytes() <= before);
//! println!("released {} bytes", summary.bytes_released());
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod barrier;
pub mod bitmap;
pub mod config;
pub mod error;
pub mod ffi;
mod global_heap;
pub mod harden;
mod local_heap;
mod mesher;
pub mod meshing;
pub mod miniheap;
mod page_map;
mod remote_free;
pub mod rng;
mod segment;
pub mod shuffle_vector;
pub mod size_classes;
pub mod span;
pub mod stats;
mod sync;
pub mod sys;
pub mod telemetry;
mod transfer_cache;

mod alloc_api;

pub use alloc_api::{
    in_internal_alloc, with_internal_alloc, Mesh, MeshForkGuard, MeshGlobalAlloc, ThreadHeap,
};
pub use config::{env_bool, env_size, env_u64, parse_bool, parse_size, MeshConfig};
pub use error::MeshError;
pub use harden::{
    parse_harden_policy, set_abort_fd, HardenConfig, HardenKind, HardenPolicy, ALL_HARDEN_KINDS,
    HARDEN_KINDS, POISON_BYTE,
};
pub use meshing::MeshSummary;
pub use segment::{SegmentId, SegmentStats};
pub use size_classes::{SizeClass, MAX_SMALL_SIZE, NUM_SIZE_CLASSES, PAGE_SIZE};
pub use stats::{HeapStats, SpanSnapshot};
pub use sys::ReleaseStrategy;
pub use telemetry::{
    bucket_upper_ns, parse_pprof, ClassSpectrum, HeapSpectrum, LatencySnapshot, PassRecord,
    PprofParseError, PprofSummary, PressureReading, ProfileStats, RejectReason,
    ResidencyBreakdown, SegmentResidency, SenseSnapshot, SiteSnapshot, TimedOp, TraceEvent,
    ABSENT, ALL_REJECT_REASONS, ALL_TIMED_OPS, LATENCY_BUCKETS, LEDGER_PASSES, NUM_TIMED_OPS,
    REJECT_REASONS,
};
