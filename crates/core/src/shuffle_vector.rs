//! Shuffle vectors: randomized freelists with O(1) malloc and free (§4.2).
//!
//! A shuffle vector is a fixed array of the *free* slot offsets of one span,
//! kept in uniformly random order, plus an allocation index. Allocation pops
//! the next offset ("bump-pointer like", Fig 3d); deallocation pushes the
//! freed offset at the front and performs one Fisher–Yates step, preserving
//! the uniformity of the remaining order (Fig 3c).
//!
//! Compared with the random-probing bitmaps of DieHard(er), shuffle vectors
//! need no over-provisioning (the probing argument requires ~2× slack) and
//! are single-threaded by construction: only the owning thread touches its
//! vectors, so no atomics or locks appear on the malloc/free fast path. Each
//! offset fits in one byte because spans hold at most 256 objects.
//!
//! The vector *claims* its slots from the MiniHeap's atomic bitmap when
//! attached (bits set), and returns unconsumed slots (bits cleared) when
//! detached, so remote threads always see an accurate view of availability.

use crate::bitmap::AtomicBitmap;
use crate::miniheap::MiniHeapId;
use crate::rng::Rng;
use crate::size_classes::MAX_OBJECTS_PER_SPAN;

/// Randomized freelist over the slots of one attached span (§4.2).
///
/// Addresses are represented as `usize` so the data structure is pure and
/// testable without a live arena; the heap front-ends convert to and from
/// raw pointers.
///
/// # Examples
///
/// ```
/// use mesh_core::shuffle_vector::ShuffleVector;
/// use mesh_core::bitmap::AtomicBitmap;
/// use mesh_core::miniheap::MiniHeapId;
/// use mesh_core::rng::Rng;
///
/// let mut rng = Rng::with_seed(1);
/// let bitmap = AtomicBitmap::new(256);
/// let mut sv = ShuffleVector::new(true);
/// sv.attach(MiniHeapId::from_raw(1), 0x10000, 4096, 256, 16, &bitmap, &mut rng);
/// let a = sv.malloc().unwrap();
/// assert!(sv.contains(a));
/// unsafe { sv.free(a, &mut rng) };
/// ```
#[derive(Debug)]
pub struct ShuffleVector {
    /// Free offsets, stored in `list[off..max]` in random order.
    list: [u8; MAX_OBJECTS_PER_SPAN],
    /// Membership mask over `list[off..max]`: bit `i` set ⇔ offset `i` is
    /// currently available (free). Maintained alongside the list so the
    /// free path can reject double frees of local objects in O(1) —
    /// something the pure list cannot do without a scan.
    avail: [u64; MAX_OBJECTS_PER_SPAN / 64],
    /// Allocation index: `list[off]` is the next offset handed out.
    off: u16,
    /// Object count of the attached span (`maxCount()`).
    max: u16,
    /// Object size in bytes of the attached span.
    object_size: u32,
    /// Span length in bytes (for `contains` range checks).
    span_bytes: usize,
    /// Start addresses of every virtual span of the attached MiniHeap
    /// (more than one after meshing).
    span_starts: Vec<usize>,
    /// Attached MiniHeap, if any.
    mh: Option<MiniHeapId>,
    /// Whether allocation order is randomized (`false` reproduces the
    /// paper's "Mesh (no rand)" ablation, §6.3).
    randomized: bool,
}

impl ShuffleVector {
    /// Creates an empty, detached vector.
    pub fn new(randomized: bool) -> Self {
        ShuffleVector {
            list: [0; MAX_OBJECTS_PER_SPAN],
            avail: [0; MAX_OBJECTS_PER_SPAN / 64],
            off: 0,
            max: 0,
            object_size: 0,
            span_bytes: 0,
            span_starts: Vec::new(),
            mh: None,
            randomized,
        }
    }

    /// Whether no offsets remain to allocate (also true when detached).
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.off >= self.max
    }

    /// Number of offsets currently available.
    #[inline]
    pub fn available(&self) -> usize {
        (self.max - self.off) as usize
    }

    /// The attached MiniHeap, if any.
    #[inline]
    pub fn miniheap(&self) -> Option<MiniHeapId> {
        self.mh
    }

    /// Object size of the attached span, zero when detached.
    #[inline]
    pub fn object_size(&self) -> usize {
        self.object_size as usize
    }

    /// Object count of the attached span (zero when detached).
    #[inline]
    pub fn object_count(&self) -> usize {
        self.max as usize
    }

    /// Whether slot `slot` is currently in the free list (available).
    #[inline]
    pub fn is_available(&self, slot: usize) -> bool {
        self.avail[slot / 64] >> (slot % 64) & 1 == 1
    }

    /// Attaches a MiniHeap: claims every clear bit in `bitmap` (atomically
    /// setting it, §4.1), records the claimed offsets, and randomizes their
    /// order with a Knuth–Fisher–Yates shuffle.
    ///
    /// `span_starts` lists the start address of each virtual span aliasing
    /// the MiniHeap's physical span; `primary_start` (the first element) is
    /// where new allocations are served from.
    ///
    /// # Panics
    ///
    /// Panics if the vector is already attached, if `object_count`
    /// exceeds 256, or if `span_starts` is empty.
    #[allow(clippy::too_many_arguments)] // mirrors the attach signature of Fig 4
    pub fn attach(
        &mut self,
        mh: MiniHeapId,
        primary_start: usize,
        span_bytes: usize,
        object_count: usize,
        object_size: usize,
        bitmap: &AtomicBitmap,
        rng: &mut Rng,
    ) {
        assert!(self.mh.is_none(), "attach on an already-attached vector");
        assert!(object_count <= MAX_OBJECTS_PER_SPAN);
        assert!(primary_start != 0, "span start must be non-null");
        self.mh = Some(mh);
        self.object_size = object_size as u32;
        self.span_bytes = span_bytes;
        self.span_starts.clear();
        self.span_starts.push(primary_start);
        self.max = object_count as u16;
        self.off = object_count as u16;
        self.avail = [0; MAX_OBJECTS_PER_SPAN / 64];
        for i in 0..object_count {
            if bitmap.try_set(i) {
                self.off -= 1;
                self.list[self.off as usize] = i as u8;
                self.avail[i / 64] |= 1 << (i % 64);
            }
        }
        if self.randomized {
            let max = self.max as usize;
            rng.shuffle(&mut self.list[self.off as usize..max]);
        }
    }

    /// Registers an additional virtual span aliasing the attached MiniHeap
    /// (present when a previously-meshed MiniHeap is re-attached).
    pub fn push_span_alias(&mut self, start: usize) {
        assert!(self.mh.is_some(), "alias on a detached vector");
        self.span_starts.push(start);
    }

    /// Detaches the current MiniHeap, atomically returning every unconsumed
    /// offset to `bitmap` (bits cleared) so other threads and the mesher
    /// see them as free. Returns the detached MiniHeap id.
    ///
    /// # Panics
    ///
    /// Panics if the vector is detached.
    pub fn detach(&mut self, bitmap: &AtomicBitmap) -> MiniHeapId {
        let mh = self.mh.take().expect("detach on a detached vector");
        for i in self.off..self.max {
            let freed = bitmap.unset(self.list[i as usize] as usize);
            debug_assert!(freed, "slot in shuffle vector was not claimed");
        }
        self.off = 0;
        self.max = 0;
        self.object_size = 0;
        self.span_bytes = 0;
        self.span_starts.clear();
        self.avail = [0; MAX_OBJECTS_PER_SPAN / 64];
        mh
    }

    /// Pops the next random offset and returns the object address, or
    /// `None` if the vector is exhausted (Fig 4, `ShuffleVector::malloc`).
    #[inline]
    pub fn malloc(&mut self) -> Option<usize> {
        if self.is_exhausted() {
            return None;
        }
        let off = self.list[self.off as usize];
        self.off += 1;
        self.avail[off as usize / 64] &= !(1 << (off as usize % 64));
        Some(self.span_starts[0] + off as usize * self.object_size as usize)
    }

    /// Pulls up to `n` objects out of the vector for a transfer-cache
    /// batch. From the vector's perspective a spill *is* allocation —
    /// the offsets leave the list and the avail mask, while the MiniHeap
    /// bitmap bits stay claimed — so the addresses are exactly as safe to
    /// park as if an application held them.
    pub fn spill(&mut self, n: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n.min(self.available()));
        for _ in 0..n {
            match self.malloc() {
                Some(addr) => out.push(addr),
                None => break,
            }
        }
        out
    }

    /// Whether `addr` falls inside any virtual span of the attached
    /// MiniHeap (the `contains` check on the local-free path, Fig 4).
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        self.span_starts
            .iter()
            .any(|&s| addr >= s && addr < s + self.span_bytes)
    }

    /// Frees a local object: pushes its offset at the allocation index and
    /// swaps it with a uniformly chosen position, preserving randomness
    /// (Fig 3c/d and Fig 4, `ShuffleVector::free`).
    ///
    /// # Safety
    ///
    /// `addr` must be an object address previously returned by
    /// [`ShuffleVector::malloc`] on this vector's attached MiniHeap (or a
    /// remote allocation within it) that is currently allocated. Freeing a
    /// foreign or already-free address corrupts the freelist exactly as it
    /// would in C.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `addr` is outside the attached spans or the
    /// vector is already full.
    #[inline]
    pub unsafe fn free(&mut self, addr: usize, rng: &mut Rng) {
        debug_assert!(self.contains(addr), "free of non-local address");
        let span = self
            .span_starts
            .iter()
            .find(|&&s| addr >= s && addr < s + self.span_bytes)
            .copied()
            .unwrap_or_else(|| self.span_starts[0]);
        let freed = self.free_slot((addr - span) / self.object_size as usize, rng);
        debug_assert!(freed, "double free into a shuffle vector");
    }

    /// Frees the object in slot `slot` of the attached span, by index —
    /// the O(1) entry point of the page-map-routed free path, which has
    /// already resolved the owning span and slot without scanning.
    /// Returns `false` (leaving the vector untouched) when the slot is
    /// already free: a double free, detected by the availability mask.
    ///
    /// # Safety
    ///
    /// `slot` must be a valid slot index (`< object_count()`) of the
    /// attached MiniHeap. The caller is responsible for having resolved
    /// `slot` from an address inside one of the attached virtual spans.
    #[inline]
    pub unsafe fn free_slot(&mut self, slot: usize, rng: &mut Rng) -> bool {
        debug_assert!(self.mh.is_some(), "free into a detached vector");
        debug_assert!(slot < self.max as usize, "slot out of range");
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        if self.avail[word] & bit != 0 {
            return false; // already in the free list: double free
        }
        self.avail[word] |= bit;
        self.off -= 1;
        self.list[self.off as usize] = slot as u8;
        if self.randomized && self.off + 1 < self.max {
            let swap = rng.in_range(self.off as u32, self.max as u32 - 1) as usize;
            self.list.swap(self.off as usize, swap);
        }
        true
    }

    /// The offsets currently available, in allocation order (test hook).
    pub fn free_offsets(&self) -> &[u8] {
        &self.list[self.off as usize..self.max as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const SPAN: usize = 0x1000_0000;

    fn attached(object_count: usize, randomized: bool, seed: u64) -> (ShuffleVector, AtomicBitmap, Rng) {
        let mut rng = Rng::with_seed(seed);
        let bitmap = AtomicBitmap::new(object_count);
        let mut sv = ShuffleVector::new(randomized);
        sv.attach(
            MiniHeapId::from_raw(1),
            SPAN,
            4096,
            object_count,
            4096 / object_count,
            &bitmap,
            &mut rng,
        );
        (sv, bitmap, rng)
    }

    #[test]
    fn attach_claims_all_bits() {
        let (sv, bitmap, _) = attached(256, true, 3);
        assert_eq!(bitmap.in_use(), 256);
        assert_eq!(sv.available(), 256);
    }

    #[test]
    fn spill_behaves_like_allocation() {
        let (mut sv, bitmap, _) = attached(64, true, 7);
        let batch = sv.spill(16);
        assert_eq!(batch.len(), 16);
        assert_eq!(sv.available(), 48);
        assert_eq!(bitmap.in_use(), 64, "spilled claims stay set");
        // Spilled addresses are distinct, in-span, and never handed out
        // again by subsequent mallocs.
        let spilled: HashSet<usize> = batch.iter().copied().collect();
        assert_eq!(spilled.len(), 16);
        while let Some(addr) = sv.malloc() {
            assert!(!spilled.contains(&addr));
        }
        // Over-asking drains what's left without panicking.
        let (mut sv2, _b, _) = attached(16, false, 1);
        assert_eq!(sv2.spill(64).len(), 16);
        assert_eq!(sv2.available(), 0);
    }

    #[test]
    fn attach_skips_already_set_bits() {
        let mut rng = Rng::with_seed(3);
        let bitmap = AtomicBitmap::new(16);
        bitmap.try_set(4);
        bitmap.try_set(9);
        let mut sv = ShuffleVector::new(true);
        sv.attach(MiniHeapId::from_raw(1), SPAN, 4096, 16, 256, &bitmap, &mut rng);
        assert_eq!(sv.available(), 14);
        let offs: HashSet<u8> = sv.free_offsets().iter().copied().collect();
        assert!(!offs.contains(&4) && !offs.contains(&9));
    }

    #[test]
    fn malloc_returns_every_slot_exactly_once() {
        let (mut sv, _bm, _) = attached(64, true, 7);
        let mut seen = HashSet::new();
        while let Some(addr) = sv.malloc() {
            assert!((SPAN..SPAN + 4096).contains(&addr));
            assert_eq!((addr - SPAN) % 64, 0);
            assert!(seen.insert(addr), "duplicate address {addr:#x}");
        }
        assert_eq!(seen.len(), 64);
        assert!(sv.is_exhausted());
    }

    #[test]
    fn randomized_allocation_order_is_not_sequential() {
        let (mut sv, _bm, _) = attached(256, true, 42);
        let order: Vec<usize> = std::iter::from_fn(|| sv.malloc()).collect();
        let sequential: Vec<usize> = (0..256).map(|i| SPAN + i * 16).collect();
        assert_ne!(order, sequential);
    }

    #[test]
    fn unrandomized_mode_is_deterministic_and_identical_across_spans() {
        // Two no-rand vectors over fresh spans allocate identical offset
        // sequences — the §6.3 pathology that defeats meshing.
        let (mut a, _bm1, _) = attached(32, false, 1);
        let (mut b, _bm2, _) = attached(32, false, 999);
        let seq_a: Vec<usize> = std::iter::from_fn(|| a.malloc()).map(|p| p - SPAN).collect();
        let seq_b: Vec<usize> = std::iter::from_fn(|| b.malloc()).map(|p| p - SPAN).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn free_then_malloc_reuses_slot() {
        let (mut sv, _bm, mut rng) = attached(8, true, 9);
        let mut addrs: Vec<usize> = std::iter::from_fn(|| sv.malloc()).collect();
        assert!(sv.is_exhausted());
        let victim = addrs.remove(3);
        unsafe { sv.free(victim, &mut rng) };
        assert_eq!(sv.available(), 1);
        assert_eq!(sv.malloc(), Some(victim));
    }

    #[test]
    fn free_preserves_set_of_available_offsets() {
        let (mut sv, _bm, mut rng) = attached(128, true, 10);
        let mut live = vec![];
        for _ in 0..100 {
            live.push(sv.malloc().unwrap());
        }
        // Free half back in random positions.
        for addr in live.drain(..50) {
            unsafe { sv.free(addr, &mut rng) };
        }
        let mut seen = HashSet::new();
        while let Some(a) = sv.malloc() {
            assert!(seen.insert(a));
        }
        // 128 - 100 + 50 = 78 offsets should have been available.
        assert_eq!(seen.len(), 78);
        for a in &live {
            assert!(!seen.contains(a), "live object handed out again");
        }
    }

    #[test]
    fn detach_returns_leftover_bits() {
        let (mut sv, bitmap, _) = attached(16, true, 11);
        for _ in 0..5 {
            sv.malloc().unwrap();
        }
        let mh = sv.detach(&bitmap);
        assert_eq!(mh, MiniHeapId::from_raw(1));
        // 5 allocated remain set; 11 unconsumed were returned.
        assert_eq!(bitmap.in_use(), 5);
        assert!(sv.miniheap().is_none());
        assert!(sv.is_exhausted());
    }

    #[test]
    fn contains_covers_aliased_spans() {
        let (mut sv, _bm, _) = attached(16, true, 12);
        sv.push_span_alias(SPAN + 0x10_000);
        assert!(sv.contains(SPAN + 100));
        assert!(sv.contains(SPAN + 0x10_000 + 4095));
        assert!(!sv.contains(SPAN + 4096));
        assert!(!sv.contains(SPAN + 0x10_000 + 4096));
    }

    #[test]
    fn free_from_aliased_span_computes_offset_from_that_span() {
        let (mut sv, _bm, mut rng) = attached(16, true, 13);
        sv.push_span_alias(SPAN + 0x10_000);
        while sv.malloc().is_some() {}
        // Object at slot 3 freed through the *alias* address.
        unsafe { sv.free(SPAN + 0x10_000 + 3 * 256, &mut rng) };
        let got = sv.malloc().unwrap();
        // Allocation is always served from the primary span.
        assert_eq!(got, SPAN + 3 * 256);
    }

    #[test]
    fn randomness_distribution_of_first_allocation() {
        // The first slot handed out must be ~uniform over all slots: this is
        // the property §2.2's analysis rests on.
        let mut counts = [0usize; 16];
        for seed in 0..4000 {
            let (mut sv, _bm, _) = attached(16, true, seed);
            let addr = sv.malloc().unwrap();
            counts[(addr - SPAN) / 256] += 1;
        }
        let expected = 4000 / 16;
        for &c in &counts {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.35,
                "first-slot distribution skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn free_slot_detects_double_free() {
        let (mut sv, _bm, mut rng) = attached(16, true, 21);
        let addr = sv.malloc().unwrap();
        let slot = (addr - SPAN) / 256;
        assert!(!sv.is_available(slot));
        assert!(unsafe { sv.free_slot(slot, &mut rng) }, "first free accepted");
        assert!(sv.is_available(slot));
        assert!(!unsafe { sv.free_slot(slot, &mut rng) }, "second free rejected");
        assert_eq!(sv.available(), 16, "rejected free changed nothing");
    }

    #[test]
    fn availability_mask_tracks_list_membership() {
        let (mut sv, _bm, mut rng) = attached(64, true, 22);
        for slot in 0..64 {
            assert!(sv.is_available(slot), "all slots free after attach");
        }
        let mut live = vec![];
        for _ in 0..40 {
            let a = sv.malloc().unwrap();
            let slot = (a - SPAN) / 64;
            assert!(!sv.is_available(slot), "popped slot left the mask");
            live.push(a);
        }
        for a in live.drain(..20) {
            unsafe { sv.free(a, &mut rng) };
            assert!(sv.is_available((a - SPAN) / 64));
        }
        // Mask population must equal the free-list length.
        let pop: u32 = (0..64).map(|s| sv.is_available(s) as u32).sum();
        assert_eq!(pop as usize, sv.available());
    }

    #[test]
    fn attach_skips_leave_mask_clear() {
        let mut rng = Rng::with_seed(23);
        let bitmap = AtomicBitmap::new(16);
        bitmap.try_set(4); // live object from a previous attachment
        let mut sv = ShuffleVector::new(true);
        sv.attach(MiniHeapId::from_raw(1), SPAN, 4096, 16, 256, &bitmap, &mut rng);
        assert!(!sv.is_available(4), "unclaimed slot is live, not free");
        // Freeing the pre-existing live object is a legitimate local free.
        assert!(unsafe { sv.free_slot(4, &mut rng) });
        assert_eq!(sv.available(), 16);
    }

    #[test]
    #[should_panic(expected = "already-attached")]
    fn double_attach_panics() {
        let (mut sv, bitmap, mut rng) = attached(8, true, 14);
        sv.attach(MiniHeapId::from_raw(2), SPAN, 4096, 8, 512, &bitmap, &mut rng);
    }

    #[test]
    #[should_panic(expected = "detach on a detached")]
    fn detach_when_detached_panics() {
        let bitmap = AtomicBitmap::new(8);
        ShuffleVector::new(true).detach(&bitmap);
    }
}
