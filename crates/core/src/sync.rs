//! Poison-transparent mutex used throughout the heap.
//!
//! A thin wrapper over [`std::sync::Mutex`] (the offline build cannot pull
//! in `parking_lot`) that ignores poisoning: the allocator's invariants
//! are guarded by its own accounting, and a panic while holding a heap
//! lock must not turn every subsequent allocation into a second panic.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking; `None` when
    /// contended (poisoned locks are recovered, not treated as
    /// contention).
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must report contention");
        }
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1, "poisoned mutex still usable");
    }
}
