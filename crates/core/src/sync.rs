//! Poison-transparent mutex and the re-entrancy flag used throughout the
//! heap.
//!
//! The mutex is a thin wrapper over [`std::sync::Mutex`] (the offline
//! build cannot pull in `parking_lot`) that ignores poisoning: the
//! allocator's invariants are guarded by its own accounting, and a panic
//! while holding a heap lock must not turn every subsequent allocation
//! into a second panic.
//!
//! [`ReentrantFlag`] is the substrate of the internal-allocation guard
//! (`with_internal_alloc`): a per-thread boolean that can be *entered*
//! exactly once per thread at a time. It is deliberately built on a
//! `const`-initialized, non-`Drop` `thread_local!` so that reading or
//! setting it never allocates and never registers a TLS destructor —
//! both would be fatal inside an interposed `malloc`, where the guard is
//! consulted before any heap exists.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A per-thread entered/not-entered flag with scoped entry. See
/// [`crate::with_internal_alloc`] for the allocator-facing contract.
pub(crate) struct ReentrantFlag {
    read: fn() -> bool,
    set: fn(bool),
}

impl ReentrantFlag {
    /// Builds a flag over a caller-provided thread-local cell (the macro
    /// cannot be expanded here because `thread_local!` statics must live
    /// in the defining crate's scope).
    pub const fn new(read: fn() -> bool, set: fn(bool)) -> ReentrantFlag {
        ReentrantFlag { read, set }
    }

    /// Whether the current thread has entered the flag.
    #[inline]
    pub fn is_set(&self) -> bool {
        (self.read)()
    }

    /// Runs `f` with the flag set, restoring the previous state afterwards
    /// (including on unwind). Re-entrant calls simply observe the flag
    /// already set and change nothing.
    #[inline]
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        struct Reset(fn(bool), bool);
        impl Drop for Reset {
            fn drop(&mut self) {
                if self.1 {
                    (self.0)(false);
                }
            }
        }
        let entered = if (self.read)() {
            false
        } else {
            (self.set)(true);
            true
        };
        let _reset = Reset(self.set, entered);
        f()
    }
}

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available (poisoned locks are
    /// recovered, not propagated as a second panic).
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking; `None` when
    /// contended (poisoned locks are recovered, not treated as
    /// contention).
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires the lock, reporting how long the *contended* wait took:
    /// `None` when the uncontended `try_lock` succeeded (nothing timed —
    /// the fast path pays no clock read), `Some(ns)` when the caller had
    /// to block. This is the substrate of lock-wait and mutator-pause
    /// accounting: only waits are measured, at the boundary where they
    /// happen.
    #[inline]
    pub fn lock_timed(&self) -> (MutexGuard<'_, T>, Option<u64>) {
        if let Some(g) = self.try_lock() {
            return (g, None);
        }
        let t0 = std::time::Instant::now();
        let g = self.lock();
        (g, Some(t0.elapsed().as_nanos() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must report contention");
        }
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_timed_reports_only_contended_waits() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let (_g, waited) = m.lock_timed();
        assert_eq!(waited, None, "uncontended acquisition is not timed");
        drop(_g);
        let m2 = std::sync::Arc::clone(&m);
        let g = m.lock();
        let h = std::thread::spawn(move || {
            let (_g, waited) = m2.lock_timed();
            waited
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(g);
        let waited = h.join().unwrap();
        assert!(waited.is_some(), "blocked acquisition reports a wait");
    }

    #[test]
    fn reentrant_flag_scopes_and_nests() {
        thread_local! {
            static FLAG: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
        }
        static F: ReentrantFlag =
            ReentrantFlag::new(|| FLAG.with(|c| c.get()), |v| FLAG.with(|c| c.set(v)));
        assert!(!F.is_set());
        F.with(|| {
            assert!(F.is_set());
            // Nested entry is a no-op; the flag survives the inner scope.
            F.with(|| assert!(F.is_set()));
            assert!(F.is_set());
        });
        assert!(!F.is_set());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1, "poisoned mutex still usable");
    }

    #[test]
    fn try_lock_recovers_poison_without_reporting_contention() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // The panicking thread released the (poisoned) lock on unwind:
        // try_lock must hand out the recovered guard, not report the
        // poison as contention.
        let g = m.try_lock().expect("poisoned-but-free lock acquired");
        assert_eq!(*g, 7);
        drop(g);
        // lock_timed's fast path goes through try_lock: a poisoned free
        // lock is still an untimed acquisition.
        let (g, waited) = m.lock_timed();
        assert_eq!(*g, 7);
        assert_eq!(waited, None, "recovered acquisition is uncontended");
    }
}
