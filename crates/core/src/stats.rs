//! Heap statistics: the quantities the paper's `mstat` tool measures (§6.1)
//! plus meshing-specific counters used throughout the evaluation.
//!
//! Counters are plain atomics so the hot paths can bump them without the
//! global lock; [`HeapStats`] is a coherent snapshot taken on demand.

use crate::size_classes::NUM_SIZE_CLASSES;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live atomic counters owned by a heap. Exposed for the substrate layers
/// ([`crate::arena::Arena`] shares them); user code should read the
/// [`HeapStats`] snapshot via [`crate::Mesh::stats`] instead.
#[derive(Debug, Default)]
pub struct Counters {
    pub mallocs: AtomicU64,
    pub frees: AtomicU64,
    pub remote_frees: AtomicU64,
    pub invalid_frees: AtomicU64,
    pub double_frees: AtomicU64,
    pub large_allocs: AtomicU64,
    pub mesh_passes: AtomicU64,
    pub spans_meshed: AtomicU64,
    pub mesh_pages_released: AtomicU64,
    pub mesh_bytes_copied: AtomicU64,
    pub mesh_nanos: AtomicU64,
    pub mesh_longest_pause_nanos: AtomicU64,
    pub dirty_purges: AtomicU64,
    pub pages_purged: AtomicU64,
    /// Pages currently committed (handed out and not yet released to the
    /// OS): the physical footprint of the heap. Mirrors the arena's
    /// internal accounting for lock-free reads.
    pub committed_pages: AtomicUsize,
    pub committed_pages_peak: AtomicUsize,
    /// Bytes of live application objects (allocated minus freed).
    pub live_bytes: AtomicUsize,
    /// Shuffle-vector refills (each takes exactly one class lock).
    pub refills: AtomicU64,
    /// Non-local frees pushed onto a lock-free remote-free queue.
    pub remote_free_queued: AtomicU64,
    /// Remote-free queue entries applied under a class lock.
    pub remote_free_drained: AtomicU64,
    /// Times a class lock was found contended (per size class): the
    /// sharding metric — the seed's single global mutex counted every
    /// cross-class collision here.
    pub class_lock_contention: [AtomicU64; NUM_SIZE_CLASSES],
    /// Times the arena (span/page-table) leaf lock was found contended.
    pub arena_lock_contention: AtomicU64,
    /// Segments mapped over the heap's lifetime (including the initial
    /// one); segment ids are monotonic, so this equals `max id + 1`.
    pub segments_created: AtomicU64,
    /// Segments unmapped ("retired") after all their pages went clean.
    pub segments_retired: AtomicU64,
    /// Segments currently mapped.
    pub active_segments: AtomicUsize,
    /// Pages currently mapped to segment files (virtual footprint of the
    /// active segments; committed ≤ mapped ≤ cap).
    pub mapped_pages: AtomicUsize,
    /// Times this heap was privatized in a forked child (each copies the
    /// segment files so parent and child stop sharing pages).
    pub forks: AtomicU64,
}

impl Counters {
    /// Updates committed-page accounting, maintaining the peak.
    pub fn set_committed(&self, pages: usize) {
        self.committed_pages.store(pages, Ordering::Relaxed);
        self.committed_pages_peak.fetch_max(pages, Ordering::Relaxed);
    }

    /// Records the duration of one meshing pass.
    pub fn record_mesh_pass(&self, nanos: u64) {
        self.mesh_passes.fetch_add(1, Ordering::Relaxed);
        self.mesh_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.mesh_longest_pause_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Takes a coherent-enough snapshot (individual counters are relaxed;
    /// exact cross-counter consistency is not required for reporting).
    pub fn snapshot(&self) -> HeapStats {
        HeapStats {
            mallocs: self.mallocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            remote_frees: self.remote_frees.load(Ordering::Relaxed),
            invalid_frees: self.invalid_frees.load(Ordering::Relaxed),
            double_frees: self.double_frees.load(Ordering::Relaxed),
            large_allocs: self.large_allocs.load(Ordering::Relaxed),
            mesh_passes: self.mesh_passes.load(Ordering::Relaxed),
            spans_meshed: self.spans_meshed.load(Ordering::Relaxed),
            mesh_pages_released: self.mesh_pages_released.load(Ordering::Relaxed),
            mesh_bytes_copied: self.mesh_bytes_copied.load(Ordering::Relaxed),
            mesh_nanos: self.mesh_nanos.load(Ordering::Relaxed),
            mesh_longest_pause_nanos: self.mesh_longest_pause_nanos.load(Ordering::Relaxed),
            dirty_purges: self.dirty_purges.load(Ordering::Relaxed),
            pages_purged: self.pages_purged.load(Ordering::Relaxed),
            committed_pages: self.committed_pages.load(Ordering::Relaxed),
            committed_pages_peak: self.committed_pages_peak.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            refills: self.refills.load(Ordering::Relaxed),
            remote_free_queued: self.remote_free_queued.load(Ordering::Relaxed),
            remote_free_drained: self.remote_free_drained.load(Ordering::Relaxed),
            class_lock_contention: std::array::from_fn(|i| {
                self.class_lock_contention[i].load(Ordering::Relaxed)
            }),
            arena_lock_contention: self.arena_lock_contention.load(Ordering::Relaxed),
            segments_created: self.segments_created.load(Ordering::Relaxed),
            segments_retired: self.segments_retired.load(Ordering::Relaxed),
            segment_count: self.active_segments.load(Ordering::Relaxed),
            mapped_pages: self.mapped_pages.load(Ordering::Relaxed),
            forks: self.forks.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of heap statistics.
///
/// # Examples
///
/// ```
/// use mesh_core::{Mesh, MeshConfig};
///
/// # fn main() -> Result<(), mesh_core::MeshError> {
/// let mesh = Mesh::new(MeshConfig::default().arena_bytes(16 << 20))?;
/// let p = mesh.malloc(100);
/// let stats = mesh.stats();
/// assert_eq!(stats.mallocs, 1);
/// assert!(stats.heap_bytes() > 0);
/// # unsafe { mesh.free(p) };
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Total successful allocations.
    pub mallocs: u64,
    /// Total frees (all paths).
    pub frees: u64,
    /// Frees routed through the global heap (§3.2 "remote"/global frees).
    pub remote_frees: u64,
    /// Frees of pointers not owned by the heap (discarded, §4.4.4).
    pub invalid_frees: u64,
    /// Frees of already-free objects (discarded, §4.4.4).
    pub double_frees: u64,
    /// Allocations above the largest size class (§4.4.3).
    pub large_allocs: u64,
    /// Completed meshing passes.
    pub mesh_passes: u64,
    /// Span pairs merged by meshing.
    pub spans_meshed: u64,
    /// Physical pages released by meshing.
    pub mesh_pages_released: u64,
    /// Object bytes copied while meshing.
    pub mesh_bytes_copied: u64,
    /// Total nanoseconds spent inside meshing passes.
    pub mesh_nanos: u64,
    /// Longest single meshing pass in nanoseconds (the paper reports the
    /// longest pause, §6.2.2).
    pub mesh_longest_pause_nanos: u64,
    /// Dirty-page purge events (§4.4.1).
    pub dirty_purges: u64,
    /// Total pages released by dirty purges (each refaults on next use).
    pub pages_purged: u64,
    /// Pages currently committed — the heap's physical footprint.
    pub committed_pages: usize,
    /// Peak committed pages over the heap's lifetime.
    pub committed_pages_peak: usize,
    /// Live application bytes (allocated − freed), before size-class
    /// rounding.
    pub live_bytes: usize,
    /// Shuffle-vector refills (one class-lock acquisition each).
    pub refills: u64,
    /// Non-local frees enqueued lock-free (§4.4.4 sharded path).
    pub remote_free_queued: u64,
    /// Queued remote frees applied under their class lock.
    pub remote_free_drained: u64,
    /// Contended class-lock acquisitions, per size class.
    pub class_lock_contention: [u64; NUM_SIZE_CLASSES],
    /// Contended acquisitions of the arena leaf lock.
    pub arena_lock_contention: u64,
    /// Segments mapped over the heap's lifetime (ids are monotonic).
    pub segments_created: u64,
    /// Segments retired (unmapped after all their pages went clean).
    pub segments_retired: u64,
    /// Segments currently mapped.
    pub segment_count: usize,
    /// Pages currently mapped to segment files.
    pub mapped_pages: usize,
    /// Times the heap was privatized in a forked child.
    pub forks: u64,
}

impl HeapStats {
    /// Physical heap footprint in bytes (committed pages × page size):
    /// the analog of the paper's cgroup RSS measurement.
    pub fn heap_bytes(&self) -> usize {
        self.committed_pages * crate::size_classes::PAGE_SIZE
    }

    /// Peak physical heap footprint in bytes.
    pub fn peak_heap_bytes(&self) -> usize {
        self.committed_pages_peak * crate::size_classes::PAGE_SIZE
    }

    /// Fragmentation ratio: physical footprint over live bytes (Redis
    /// computes exactly this to decide when to defragment, §6.2.2).
    /// Returns `None` when no bytes are live.
    pub fn fragmentation_ratio(&self) -> Option<f64> {
        if self.live_bytes == 0 {
            None
        } else {
            Some(self.heap_bytes() as f64 / self.live_bytes as f64)
        }
    }

    /// Total contended class-lock acquisitions across all size classes.
    pub fn total_class_contention(&self) -> u64 {
        self.class_lock_contention.iter().sum()
    }

    /// Bytes currently mapped to segment files (virtual footprint of the
    /// active segments; `heap_bytes() ≤ mapped_bytes()`).
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_pages * crate::size_classes::PAGE_SIZE
    }

    /// One machine-parseable `key=value` summary line, used by the C ABI
    /// layer's `mesh_stats_print()` / `MESH_PRINT_STATS_AT_EXIT=1` dump
    /// (grep for `^mesh:`; `pairs_meshed` is the paper's headline
    /// meshing metric).
    pub fn render(&self) -> String {
        format!(
            "mesh: mallocs={} frees={} live_bytes={} heap_bytes={} peak_heap_bytes={} \
             mapped_bytes={} large_allocs={} remote_frees={} invalid_frees={} double_frees={} \
             mesh_passes={} pairs_meshed={} mesh_pages_released={} pages_purged={} \
             segments={} segments_created={} segments_retired={} forks={}",
            self.mallocs,
            self.frees,
            self.live_bytes,
            self.heap_bytes(),
            self.peak_heap_bytes(),
            self.mapped_bytes(),
            self.large_allocs,
            self.remote_frees,
            self.invalid_frees,
            self.double_frees,
            self.mesh_passes,
            self.spans_meshed,
            self.mesh_pages_released,
            self.pages_purged,
            self.segment_count,
            self.segments_created,
            self.segments_retired,
            self.forks,
        )
    }
}

/// A point-in-time snapshot of one MiniHeap's allocation state, exposed
/// for experiments and diagnostics (e.g. cross-validating the §5 theory
/// against live heap bitmaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Object size in bytes.
    pub object_size: usize,
    /// Number of object slots in the span.
    pub object_count: usize,
    /// Live objects (set bitmap bits).
    pub in_use: usize,
    /// Raw bitmap words (bit `i` = slot `i` unavailable).
    pub bitmap_words: [u64; 4],
    /// Virtual spans aliasing this physical span (> 1 once meshed).
    pub virtual_span_count: usize,
    /// Whether the MiniHeap is attached to a thread-local heap.
    pub attached: bool,
    /// Whether this is a large-object singleton.
    pub large: bool,
}

impl SpanSnapshot {
    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.in_use as f64 / self.object_count.max(1) as f64
    }

    /// Definition 5.1 on snapshots: disjoint live slots.
    pub fn meshes_with(&self, other: &SpanSnapshot) -> bool {
        self.bitmap_words
            .iter()
            .zip(&other.bitmap_words)
            .all(|(a, b)| a & b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_snapshot_helpers() {
        let a = SpanSnapshot {
            object_size: 256,
            object_count: 16,
            in_use: 4,
            bitmap_words: [0b0101, 0, 0, 0],
            virtual_span_count: 1,
            attached: false,
            large: false,
        };
        let mut b = a;
        b.bitmap_words = [0b1010, 0, 0, 0];
        assert!(a.meshes_with(&b));
        b.bitmap_words = [0b0100, 0, 0, 0];
        assert!(!a.meshes_with(&b));
        assert!((a.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let c = Counters::default();
        c.mallocs.fetch_add(3, Ordering::Relaxed);
        c.set_committed(10);
        c.set_committed(7);
        let s = c.snapshot();
        assert_eq!(s.mallocs, 3);
        assert_eq!(s.committed_pages, 7);
        assert_eq!(s.committed_pages_peak, 10);
        assert_eq!(s.heap_bytes(), 7 * 4096);
        assert_eq!(s.peak_heap_bytes(), 10 * 4096);
    }

    #[test]
    fn fragmentation_ratio_handles_zero_live() {
        let s = HeapStats::default();
        assert_eq!(s.fragmentation_ratio(), None);
        let mut s2 = s;
        s2.live_bytes = 4096;
        s2.committed_pages = 2;
        assert_eq!(s2.fragmentation_ratio(), Some(2.0));
    }

    #[test]
    fn render_is_one_parseable_line() {
        let c = Counters::default();
        c.mallocs.fetch_add(7, Ordering::Relaxed);
        c.spans_meshed.fetch_add(2, Ordering::Relaxed);
        c.forks.fetch_add(1, Ordering::Relaxed);
        let line = c.snapshot().render();
        assert!(line.starts_with("mesh: "));
        assert!(!line.contains('\n'));
        assert!(line.contains("mallocs=7"));
        assert!(line.contains("pairs_meshed=2"));
        assert!(line.contains("forks=1"));
    }

    #[test]
    fn record_mesh_pass_tracks_longest() {
        let c = Counters::default();
        c.record_mesh_pass(5);
        c.record_mesh_pass(50);
        c.record_mesh_pass(10);
        let s = c.snapshot();
        assert_eq!(s.mesh_passes, 3);
        assert_eq!(s.mesh_nanos, 65);
        assert_eq!(s.mesh_longest_pause_nanos, 50);
    }
}
