//! Heap statistics: the quantities the paper's `mstat` tool measures (§6.1)
//! plus meshing-specific counters used throughout the evaluation.
//!
//! Two tiers keep the malloc/free fast path free of shared-cacheline
//! traffic (the §4.3 "no atomics on the hot path" claim):
//!
//! * [`Counters`] — shared atomics, bumped only by cold paths (refills,
//!   remote frees, meshing, segments).
//! * [`LocalCounters`] — one cacheline-aligned delta block per thread
//!   heap, registered with the shared block. The owning thread updates it
//!   with plain load+store pairs (single-writer, so no RMW and no lock
//!   prefix); other threads only ever *read* it. Deltas are folded into
//!   the shared counters on refill/detach/teardown, and
//!   [`Counters::snapshot`] sums the live blocks so [`HeapStats`] stays
//!   exact without any hot-path `fetch_add`.
//!
//! [`HeapStats`] is a coherent snapshot taken on demand.

use crate::harden::{ALL_HARDEN_KINDS, HARDEN_KINDS};
use crate::size_classes::NUM_SIZE_CLASSES;
use crate::sync::Mutex;
use crate::telemetry::{
    HeapSpectrum, HistSet, LatencySnapshot, LocalHists, TimedOp, TraceSet, ALL_TIMED_OPS,
};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

thread_local! {
    /// Whether the current thread is inside a meshing pass. Lock waits by
    /// the mesher itself are never mutator pauses.
    static IN_MESH_PASS: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as (not) running a meshing pass.
pub(crate) fn set_in_mesh_pass(v: bool) {
    IN_MESH_PASS.with(|c| c.set(v));
}

/// Whether the current thread is running a meshing pass.
pub(crate) fn in_mesh_pass() -> bool {
    IN_MESH_PASS.with(|c| c.get())
}

/// RAII scope marking "a mesh pass (or purge) is running on this thread":
/// bumps [`Counters::mesh_active`] and sets the thread-local mesher flag,
/// restoring both on drop (nesting-safe — purge runs inside a pass).
pub(crate) struct MeshPassScope<'a> {
    counters: &'a Counters,
    was: bool,
}

impl<'a> MeshPassScope<'a> {
    pub(crate) fn enter(counters: &'a Counters) -> MeshPassScope<'a> {
        let was = in_mesh_pass();
        set_in_mesh_pass(true);
        counters.mesh_active.fetch_add(1, Ordering::Relaxed);
        MeshPassScope { counters, was }
    }
}

impl Drop for MeshPassScope<'_> {
    fn drop(&mut self) {
        self.counters.mesh_active.fetch_sub(1, Ordering::Relaxed);
        set_in_mesh_pass(self.was);
    }
}

/// Per-thread counter deltas for the malloc/free fast path.
///
/// Single-writer: only the owning thread may call the `on_*` methods (they
/// are unsynchronized load+store increments); any thread may read. Byte
/// counters are monotonic — live bytes are derived as allocated − freed —
/// so the snapshot sum stays exact under wrapping arithmetic even when a
/// remote free is applied to the shared counters before the matching
/// allocation delta has been flushed.
#[derive(Debug, Default)]
#[repr(align(64))] // a cacheline per thread: no false sharing between blocks
pub struct LocalCounters {
    mallocs: AtomicU64,
    frees: AtomicU64,
    alloc_bytes: AtomicU64,
    freed_bytes: AtomicU64,
}

/// Single-writer increment: a relaxed load+store pair compiles to two
/// plain moves (no `lock` prefix) — legal because the owning thread is
/// the only writer.
#[inline]
fn bump(cell: &AtomicU64, v: u64) {
    cell.store(cell.load(Ordering::Relaxed).wrapping_add(v), Ordering::Relaxed);
}

impl LocalCounters {
    /// Records one fast-path allocation of `bytes` (owner thread only).
    #[inline]
    pub fn on_malloc(&self, bytes: usize) {
        bump(&self.mallocs, 1);
        bump(&self.alloc_bytes, bytes as u64);
    }

    /// Records one fast-path free of `bytes` (owner thread only).
    #[inline]
    pub fn on_free(&self, bytes: usize) {
        bump(&self.frees, 1);
        bump(&self.freed_bytes, bytes as u64);
    }
}

/// Live atomic counters owned by a heap. Exposed for the substrate layers
/// ([`crate::arena::Arena`] shares them); user code should read the
/// [`HeapStats`] snapshot via [`crate::Mesh::stats`] instead.
#[derive(Debug, Default)]
pub struct Counters {
    pub mallocs: AtomicU64,
    pub frees: AtomicU64,
    pub remote_frees: AtomicU64,
    pub invalid_frees: AtomicU64,
    pub double_frees: AtomicU64,
    pub large_allocs: AtomicU64,
    pub mesh_passes: AtomicU64,
    pub spans_meshed: AtomicU64,
    pub mesh_pages_released: AtomicU64,
    pub mesh_bytes_copied: AtomicU64,
    pub mesh_nanos: AtomicU64,
    pub mesh_longest_pause_nanos: AtomicU64,
    pub dirty_purges: AtomicU64,
    pub pages_purged: AtomicU64,
    /// Pages currently committed (handed out and not yet released to the
    /// OS): the physical footprint of the heap. Mirrors the arena's
    /// internal accounting for lock-free reads.
    pub committed_pages: AtomicUsize,
    pub committed_pages_peak: AtomicUsize,
    /// Bytes of live application objects (allocated minus freed).
    pub live_bytes: AtomicUsize,
    /// Shuffle-vector refills (each takes exactly one class lock).
    pub refills: AtomicU64,
    /// Non-local frees pushed onto a lock-free remote-free queue.
    pub remote_free_queued: AtomicU64,
    /// Remote-free queue entries applied under a class lock.
    pub remote_free_drained: AtomicU64,
    /// Refills served by popping a transfer-cache batch (no class lock).
    pub transfer_hits: AtomicU64,
    /// Refills that found the transfer cache empty and fell back to the
    /// class shard.
    pub transfer_misses: AtomicU64,
    /// Batches pushed into the transfer cache (drain recycling, detach
    /// spills, thread-cache returns).
    pub transfer_spills: AtomicU64,
    /// Sender-side remote-free batches flushed as single queue nodes.
    pub remote_free_batches: AtomicU64,
    /// Times a class lock was found contended (per size class): the
    /// sharding metric — the seed's single global mutex counted every
    /// cross-class collision here.
    pub class_lock_contention: [AtomicU64; NUM_SIZE_CLASSES],
    /// Times the arena (span/page-table) leaf lock was found contended.
    pub arena_lock_contention: AtomicU64,
    /// Segments mapped over the heap's lifetime (including the initial
    /// one); segment ids are monotonic, so this equals `max id + 1`.
    pub segments_created: AtomicU64,
    /// Segments unmapped ("retired") after all their pages went clean.
    pub segments_retired: AtomicU64,
    /// Segments currently mapped.
    pub active_segments: AtomicUsize,
    /// Pages currently mapped to segment files (virtual footprint of the
    /// active segments; committed ≤ mapped ≤ cap).
    pub mapped_pages: AtomicUsize,
    /// Times this heap was privatized in a forked child (each copies the
    /// segment files so parent and child stop sharing pages).
    pub forks: AtomicU64,
    /// `realloc` calls satisfied without moving the allocation (same size
    /// class, or still within a large allocation's page span).
    pub reallocs_in_place: AtomicU64,
    /// Hardened-mode violations by kind (indexed by
    /// [`crate::harden::HardenKind`]): count-mode detections of double
    /// frees, invalid frees, poison/UAF writes, guard-tail overwrites,
    /// and mesh-time canary trips. All zero unless `MESH_HARDEN` is on.
    pub harden_violations: [AtomicU64; HARDEN_KINDS],
    /// Mesh passes (or purge phases) currently executing. Nonzero means a
    /// mutator's contended lock wait is a *pause inflicted by the mesher*
    /// and is additionally recorded in the mutator-pause histogram.
    pub mesh_active: AtomicU64,
    /// Live per-thread delta blocks; summed by [`Counters::snapshot`] so
    /// stats stay exact while threads batch.
    locals: Mutex<Vec<Arc<LocalCounters>>>,
    /// Always-on slow-path latency histograms (shared tier plus
    /// registered per-thread single-writer blocks).
    hists: HistSet,
    /// Opt-in trace rings (`MESH_TRACE=1`); `None` keeps every slow-path
    /// record to one `Option` load.
    trace: OnceLock<Arc<TraceSet>>,
    /// The heap's birth instant: zero point for trace timestamps and
    /// `uptime_ms`. Initialized lazily on first use so `Counters` keeps
    /// its `Default`.
    epoch: OnceLock<Instant>,
}

impl Counters {
    /// Creates and registers a per-thread delta block. The block's deltas
    /// count toward [`Counters::snapshot`] until
    /// [`Counters::unregister_local`] folds them in for good.
    pub fn register_local(&self) -> Arc<LocalCounters> {
        let block = Arc::new(LocalCounters::default());
        self.locals.lock().push(Arc::clone(&block));
        block
    }

    /// Folds a block's accumulated deltas into the shared counters,
    /// zeroing the block. Must be called by the block's owning thread
    /// (flush points: refill, detach, snapshot-by-owner, teardown).
    pub fn flush_local(&self, block: &LocalCounters) {
        let mallocs = block.mallocs.swap(0, Ordering::Relaxed);
        let frees = block.frees.swap(0, Ordering::Relaxed);
        let alloc = block.alloc_bytes.swap(0, Ordering::Relaxed);
        let freed = block.freed_bytes.swap(0, Ordering::Relaxed);
        if mallocs > 0 {
            self.mallocs.fetch_add(mallocs, Ordering::Relaxed);
        }
        if frees > 0 {
            self.frees.fetch_add(frees, Ordering::Relaxed);
        }
        // fetch_add/fetch_sub wrap, so a transiently "negative" shared
        // live_bytes (remote free applied before the allocating thread
        // flushed) still sums to the exact value in `snapshot`.
        if alloc > 0 {
            self.live_bytes.fetch_add(alloc as usize, Ordering::Relaxed);
        }
        if freed > 0 {
            self.live_bytes.fetch_sub(freed as usize, Ordering::Relaxed);
        }
    }

    /// Flushes and removes a dying thread's delta block.
    pub fn unregister_local(&self, block: &Arc<LocalCounters>) {
        self.flush_local(block);
        self.locals.lock().retain(|b| !Arc::ptr_eq(b, block));
    }

    /// Holds the registry lock (fork quiescence: `GlobalHeap::lock_all`
    /// takes this last, so a forked child cannot inherit it mid-register,
    /// mid-unregister, or mid-snapshot). A leaf lock: nothing else is
    /// ever acquired while it is held.
    pub(crate) fn lock_locals(&self) -> crate::sync::MutexGuard<'_, Vec<Arc<LocalCounters>>> {
        self.locals.lock()
    }

    /// Whether the registry lock is currently held (test hook for the
    /// fork-quiescence protocol).
    #[cfg(test)]
    pub(crate) fn locals_contended(&self) -> bool {
        self.locals.try_lock().is_none()
    }

    /// Sums the pending deltas of every registered thread block.
    fn local_sums(&self) -> (u64, u64, u64, u64) {
        let locals = self.locals.lock();
        let mut sums = (0u64, 0u64, 0u64, 0u64);
        for b in locals.iter() {
            sums.0 = sums.0.wrapping_add(b.mallocs.load(Ordering::Relaxed));
            sums.1 = sums.1.wrapping_add(b.frees.load(Ordering::Relaxed));
            sums.2 = sums.2.wrapping_add(b.alloc_bytes.load(Ordering::Relaxed));
            sums.3 = sums.3.wrapping_add(b.freed_bytes.load(Ordering::Relaxed));
        }
        sums
    }

    /// Updates committed-page accounting, maintaining the peak.
    pub fn set_committed(&self, pages: usize) {
        self.committed_pages.store(pages, Ordering::Relaxed);
        self.committed_pages_peak.fetch_max(pages, Ordering::Relaxed);
    }

    /// Records the duration of one meshing pass.
    pub fn record_mesh_pass(&self, nanos: u64) {
        self.mesh_passes.fetch_add(1, Ordering::Relaxed);
        self.mesh_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.mesh_longest_pause_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// The heap's birth instant (first call wins; the heap constructor
    /// touches this so uptime starts at init, not at first telemetry read).
    pub(crate) fn epoch(&self) -> Instant {
        *self.epoch.get_or_init(Instant::now)
    }

    /// Nanoseconds since the heap's epoch.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch().elapsed().as_nanos() as u64
    }

    /// Milliseconds since the heap's epoch.
    pub(crate) fn uptime_ms(&self) -> u64 {
        self.epoch().elapsed().as_millis() as u64
    }

    /// Installs the trace rings (heap construction, `MESH_TRACE=1` only).
    pub(crate) fn set_trace(&self, trace: Arc<TraceSet>) {
        let _ = self.trace.set(trace);
    }

    /// The trace rings, when tracing is on.
    pub(crate) fn trace_set(&self) -> Option<&Arc<TraceSet>> {
        self.trace.get()
    }

    /// Records one completed slow-path operation that began at `start`:
    /// always into the shared latency histogram, and into the shared
    /// trace ring when tracing is on.
    pub(crate) fn record_slow(&self, op: TimedOp, start: Instant, arg: u64) {
        let dur_ns = start.elapsed().as_nanos() as u64;
        self.hists.record(op, dur_ns);
        if let Some(trace) = self.trace.get() {
            let start_ns = start.saturating_duration_since(self.epoch()).as_nanos() as u64;
            trace.record_shared(op, start_ns, dur_ns, arg);
        }
    }

    /// Records an already-measured wait of `dur_ns` ending now (the shape
    /// [`crate::sync::Mutex::lock_timed`] reports).
    pub(crate) fn record_wait(&self, op: TimedOp, dur_ns: u64, arg: u64) {
        self.hists.record(op, dur_ns);
        if let Some(trace) = self.trace.get() {
            let start_ns = self.now_ns().saturating_sub(dur_ns);
            trace.record_shared(op, start_ns, dur_ns, arg);
        }
    }

    /// Records a contended lock wait; when a mesh pass is active and the
    /// waiter is not the mesher itself, the wait is also a mutator pause —
    /// measured here, at the lock boundary, because that is the only
    /// place the mesher can block a mutator.
    pub(crate) fn record_lock_wait(&self, op: TimedOp, dur_ns: u64) {
        self.record_wait(op, dur_ns, 0);
        if self.mesh_active.load(Ordering::Relaxed) > 0 && !in_mesh_pass() {
            self.record_wait(TimedOp::MutatorPause, dur_ns, 0);
        }
    }

    /// Creates and registers a per-thread histogram block (single-writer,
    /// like [`Counters::register_local`]).
    pub(crate) fn register_local_hists(&self) -> Arc<LocalHists> {
        self.hists.register_local()
    }

    /// Folds and removes a dying thread's histogram block.
    pub(crate) fn unregister_local_hists(&self, block: &Arc<LocalHists>) {
        self.hists.unregister_local(block)
    }

    /// Holds the histogram-registry lock (fork quiescence; a leaf lock).
    pub(crate) fn lock_hist_locals(&self) -> crate::sync::MutexGuard<'_, Vec<Arc<LocalHists>>> {
        self.hists.lock_locals()
    }

    /// Zeroes every latency histogram (fork child: the parent's latency
    /// history is not this process's).
    pub(crate) fn zero_latency(&self) {
        self.hists.zero_all();
    }

    /// The current latency snapshot (merged shared + per-thread tiers).
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        self.hists.snapshot()
    }

    /// Takes a coherent-enough snapshot (individual counters are relaxed;
    /// exact cross-counter consistency is not required for reporting).
    /// Pending per-thread deltas are summed in, so totals are exact
    /// whenever the heap is quiescent — no flush required.
    pub fn snapshot(&self) -> HeapStats {
        let (l_mallocs, l_frees, l_alloc, l_freed) = self.local_sums();
        HeapStats {
            mallocs: self.mallocs.load(Ordering::Relaxed).wrapping_add(l_mallocs),
            frees: self.frees.load(Ordering::Relaxed).wrapping_add(l_frees),
            remote_frees: self.remote_frees.load(Ordering::Relaxed),
            invalid_frees: self.invalid_frees.load(Ordering::Relaxed),
            double_frees: self.double_frees.load(Ordering::Relaxed),
            large_allocs: self.large_allocs.load(Ordering::Relaxed),
            mesh_passes: self.mesh_passes.load(Ordering::Relaxed),
            spans_meshed: self.spans_meshed.load(Ordering::Relaxed),
            mesh_pages_released: self.mesh_pages_released.load(Ordering::Relaxed),
            mesh_bytes_copied: self.mesh_bytes_copied.load(Ordering::Relaxed),
            mesh_nanos: self.mesh_nanos.load(Ordering::Relaxed),
            mesh_longest_pause_nanos: self.mesh_longest_pause_nanos.load(Ordering::Relaxed),
            dirty_purges: self.dirty_purges.load(Ordering::Relaxed),
            pages_purged: self.pages_purged.load(Ordering::Relaxed),
            committed_pages: self.committed_pages.load(Ordering::Relaxed),
            committed_pages_peak: self.committed_pages_peak.load(Ordering::Relaxed),
            live_bytes: self
                .live_bytes
                .load(Ordering::Relaxed)
                .wrapping_add(l_alloc as usize)
                .wrapping_sub(l_freed as usize),
            refills: self.refills.load(Ordering::Relaxed),
            remote_free_queued: self.remote_free_queued.load(Ordering::Relaxed),
            remote_free_drained: self.remote_free_drained.load(Ordering::Relaxed),
            transfer_hits: self.transfer_hits.load(Ordering::Relaxed),
            transfer_misses: self.transfer_misses.load(Ordering::Relaxed),
            transfer_spills: self.transfer_spills.load(Ordering::Relaxed),
            remote_free_batches: self.remote_free_batches.load(Ordering::Relaxed),
            class_lock_contention: std::array::from_fn(|i| {
                self.class_lock_contention[i].load(Ordering::Relaxed)
            }),
            arena_lock_contention: self.arena_lock_contention.load(Ordering::Relaxed),
            segments_created: self.segments_created.load(Ordering::Relaxed),
            segments_retired: self.segments_retired.load(Ordering::Relaxed),
            segment_count: self.active_segments.load(Ordering::Relaxed),
            mapped_pages: self.mapped_pages.load(Ordering::Relaxed),
            forks: self.forks.load(Ordering::Relaxed),
            reallocs_in_place: self.reallocs_in_place.load(Ordering::Relaxed),
            harden_violations: std::array::from_fn(|i| {
                self.harden_violations[i].load(Ordering::Relaxed)
            }),
            uptime_ms: self.uptime_ms(),
            latency: self.hists.snapshot(),
            spectrum: HeapSpectrum::default(),
        }
    }
}

/// A point-in-time snapshot of heap statistics.
///
/// # Examples
///
/// ```
/// use mesh_core::{Mesh, MeshConfig};
///
/// # fn main() -> Result<(), mesh_core::MeshError> {
/// let mesh = Mesh::new(MeshConfig::default().arena_bytes(16 << 20))?;
/// let p = mesh.malloc(100);
/// let stats = mesh.stats();
/// assert_eq!(stats.mallocs, 1);
/// assert!(stats.heap_bytes() > 0);
/// # unsafe { mesh.free(p) };
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Total successful allocations.
    pub mallocs: u64,
    /// Total frees (all paths).
    pub frees: u64,
    /// Frees routed through the global heap (§3.2 "remote"/global frees).
    pub remote_frees: u64,
    /// Frees of pointers not owned by the heap (discarded, §4.4.4).
    pub invalid_frees: u64,
    /// Frees of already-free objects (discarded, §4.4.4).
    pub double_frees: u64,
    /// Allocations above the largest size class (§4.4.3).
    pub large_allocs: u64,
    /// Completed meshing passes.
    pub mesh_passes: u64,
    /// Span pairs merged by meshing.
    pub spans_meshed: u64,
    /// Physical pages released by meshing.
    pub mesh_pages_released: u64,
    /// Object bytes copied while meshing.
    pub mesh_bytes_copied: u64,
    /// Total nanoseconds spent inside meshing passes.
    pub mesh_nanos: u64,
    /// Longest single meshing pass in nanoseconds (the paper reports the
    /// longest pause, §6.2.2).
    pub mesh_longest_pause_nanos: u64,
    /// Dirty-page purge events (§4.4.1).
    pub dirty_purges: u64,
    /// Total pages released by dirty purges (each refaults on next use).
    pub pages_purged: u64,
    /// Pages currently committed — the heap's physical footprint.
    pub committed_pages: usize,
    /// Peak committed pages over the heap's lifetime.
    pub committed_pages_peak: usize,
    /// Live application bytes (allocated − freed), before size-class
    /// rounding.
    pub live_bytes: usize,
    /// Shuffle-vector refills (one class-lock acquisition each).
    pub refills: u64,
    /// Non-local frees enqueued lock-free (§4.4.4 sharded path).
    pub remote_free_queued: u64,
    /// Queued remote frees applied under their class lock.
    pub remote_free_drained: u64,
    /// Refills served by popping a transfer-cache batch (no class lock).
    pub transfer_hits: u64,
    /// Refills that missed the transfer cache and took the class lock.
    pub transfer_misses: u64,
    /// Batches pushed into the transfer cache (recycle/spill/return).
    pub transfer_spills: u64,
    /// Sender-side remote-free batches flushed as single queue nodes.
    pub remote_free_batches: u64,
    /// Contended class-lock acquisitions, per size class.
    pub class_lock_contention: [u64; NUM_SIZE_CLASSES],
    /// Contended acquisitions of the arena leaf lock.
    pub arena_lock_contention: u64,
    /// Segments mapped over the heap's lifetime (ids are monotonic).
    pub segments_created: u64,
    /// Segments retired (unmapped after all their pages went clean).
    pub segments_retired: u64,
    /// Segments currently mapped.
    pub segment_count: usize,
    /// Pages currently mapped to segment files.
    pub mapped_pages: usize,
    /// Times the heap was privatized in a forked child.
    pub forks: u64,
    /// `realloc` calls satisfied in place (no copy, pointer unchanged).
    pub reallocs_in_place: u64,
    /// Hardened-mode violations by kind (indexed by
    /// [`crate::harden::HardenKind`]); all zero unless `MESH_HARDEN` is on.
    pub harden_violations: [u64; HARDEN_KINDS],
    /// Milliseconds since heap initialization (monotonic), so successive
    /// dumps can be diffed and rated.
    pub uptime_ms: u64,
    /// Slow-path latency histograms (always on; see
    /// [`crate::telemetry::TimedOp`] for the operations measured).
    pub latency: LatencySnapshot,
    /// Per-class occupancy spectrum with meshability estimates. Filled
    /// only by [`crate::Mesh::stats_with_spectrum`] — plain
    /// [`crate::Mesh::stats`] / [`Counters::snapshot`] leave it empty
    /// (spans are global-heap state, not counters, and walking them has
    /// a cost periodic samplers should opt into).
    pub spectrum: HeapSpectrum,
}

impl HeapStats {
    /// Physical heap footprint in bytes (committed pages × page size):
    /// the analog of the paper's cgroup RSS measurement.
    pub fn heap_bytes(&self) -> usize {
        self.committed_pages * crate::size_classes::PAGE_SIZE
    }

    /// Peak physical heap footprint in bytes.
    pub fn peak_heap_bytes(&self) -> usize {
        self.committed_pages_peak * crate::size_classes::PAGE_SIZE
    }

    /// Fragmentation ratio: physical footprint over live bytes (Redis
    /// computes exactly this to decide when to defragment, §6.2.2).
    /// Returns `None` when no bytes are live.
    pub fn fragmentation_ratio(&self) -> Option<f64> {
        if self.live_bytes == 0 {
            None
        } else {
            Some(self.heap_bytes() as f64 / self.live_bytes as f64)
        }
    }

    /// Total contended class-lock acquisitions across all size classes.
    pub fn total_class_contention(&self) -> u64 {
        self.class_lock_contention.iter().sum()
    }

    /// Total hardened-mode violations across all kinds.
    pub fn total_harden_violations(&self) -> u64 {
        self.harden_violations.iter().sum()
    }

    /// Bytes currently mapped to segment files (virtual footprint of the
    /// active segments; `heap_bytes() ≤ mapped_bytes()`).
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_pages * crate::size_classes::PAGE_SIZE
    }

    /// One machine-parseable `key=value` summary line, used by the C ABI
    /// layer's `mesh_stats_print()` / `MESH_PRINT_STATS_AT_EXIT=1` dump
    /// (grep for `^mesh:`; `pairs_meshed` is the paper's headline
    /// meshing metric). When the snapshot carries an occupancy spectrum
    /// (see [`HeapStats::spectrum`]), a compact per-class summary and the
    /// releasable-bytes estimate are appended, so `malloc_stats(3)` shows
    /// meshability at a glance. Slow-path operations that have actually
    /// fired follow as one `mesh-latency:` line each (count/p50/p99/max);
    /// a bare snapshot stays a single line.
    pub fn render(&self) -> String {
        let mut line = self.render_counters();
        if !self.spectrum.is_empty() {
            line.push_str(&format!(
                " est_releasable_bytes={} spectrum={}",
                self.spectrum.est_releasable_bytes(),
                self.spectrum.render_compact(),
            ));
        }
        for op in ALL_TIMED_OPS {
            let count = self.latency.count(op);
            if count > 0 {
                line.push_str(&format!(
                    "\nmesh-latency: op={} count={} p50_ns={} p99_ns={} max_ns={}",
                    op.name(),
                    count,
                    self.latency.percentile_ns(op, 0.50),
                    self.latency.percentile_ns(op, 0.99),
                    self.latency.max_ns(op),
                ));
            }
        }
        line
    }

    fn render_counters(&self) -> String {
        let mut line = format!(
            "mesh: mallocs={} frees={} live_bytes={} heap_bytes={} peak_heap_bytes={} \
             mapped_bytes={} large_allocs={} remote_frees={} invalid_frees={} double_frees={} \
             reallocs_in_place={} mesh_passes={} pairs_meshed={} mesh_pages_released={} \
             pages_purged={} segments={} segments_created={} segments_retired={} forks={} \
             transfer_hits={} transfer_misses={} transfer_spills={} remote_free_batches={} \
             uptime_ms={}",
            self.mallocs,
            self.frees,
            self.live_bytes,
            self.heap_bytes(),
            self.peak_heap_bytes(),
            self.mapped_bytes(),
            self.large_allocs,
            self.remote_frees,
            self.invalid_frees,
            self.double_frees,
            self.reallocs_in_place,
            self.mesh_passes,
            self.spans_meshed,
            self.mesh_pages_released,
            self.pages_purged,
            self.segment_count,
            self.segments_created,
            self.segments_retired,
            self.forks,
            self.transfer_hits,
            self.transfer_misses,
            self.transfer_spills,
            self.remote_free_batches,
            self.uptime_ms,
        );
        for (i, kind) in ALL_HARDEN_KINDS.iter().enumerate() {
            line.push_str(&format!(" harden_{}={}", kind.name(), self.harden_violations[i]));
        }
        line
    }
}

/// A point-in-time snapshot of one MiniHeap's allocation state, exposed
/// for experiments and diagnostics (e.g. cross-validating the §5 theory
/// against live heap bitmaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Object size in bytes.
    pub object_size: usize,
    /// Number of object slots in the span.
    pub object_count: usize,
    /// Live objects (set bitmap bits).
    pub in_use: usize,
    /// Raw bitmap words (bit `i` = slot `i` unavailable).
    pub bitmap_words: [u64; 4],
    /// Virtual spans aliasing this physical span (> 1 once meshed).
    pub virtual_span_count: usize,
    /// Whether the MiniHeap is attached to a thread-local heap.
    pub attached: bool,
    /// Whether this is a large-object singleton.
    pub large: bool,
}

impl SpanSnapshot {
    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.in_use as f64 / self.object_count.max(1) as f64
    }

    /// Definition 5.1 on snapshots: disjoint live slots.
    pub fn meshes_with(&self, other: &SpanSnapshot) -> bool {
        self.bitmap_words
            .iter()
            .zip(&other.bitmap_words)
            .all(|(a, b)| a & b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_snapshot_helpers() {
        let a = SpanSnapshot {
            object_size: 256,
            object_count: 16,
            in_use: 4,
            bitmap_words: [0b0101, 0, 0, 0],
            virtual_span_count: 1,
            attached: false,
            large: false,
        };
        let mut b = a;
        b.bitmap_words = [0b1010, 0, 0, 0];
        assert!(a.meshes_with(&b));
        b.bitmap_words = [0b0100, 0, 0, 0];
        assert!(!a.meshes_with(&b));
        assert!((a.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let c = Counters::default();
        c.mallocs.fetch_add(3, Ordering::Relaxed);
        c.set_committed(10);
        c.set_committed(7);
        let s = c.snapshot();
        assert_eq!(s.mallocs, 3);
        assert_eq!(s.committed_pages, 7);
        assert_eq!(s.committed_pages_peak, 10);
        assert_eq!(s.heap_bytes(), 7 * 4096);
        assert_eq!(s.peak_heap_bytes(), 10 * 4096);
    }

    #[test]
    fn fragmentation_ratio_handles_zero_live() {
        let s = HeapStats::default();
        assert_eq!(s.fragmentation_ratio(), None);
        let mut s2 = s;
        s2.live_bytes = 4096;
        s2.committed_pages = 2;
        assert_eq!(s2.fragmentation_ratio(), Some(2.0));
    }

    #[test]
    fn render_is_one_parseable_line() {
        let c = Counters::default();
        c.mallocs.fetch_add(7, Ordering::Relaxed);
        c.spans_meshed.fetch_add(2, Ordering::Relaxed);
        c.forks.fetch_add(1, Ordering::Relaxed);
        c.harden_violations[crate::harden::HardenKind::Poison as usize]
            .fetch_add(3, Ordering::Relaxed);
        let line = c.snapshot().render();
        assert!(line.starts_with("mesh: "));
        assert!(!line.contains('\n'));
        assert!(line.contains("mallocs=7"));
        assert!(line.contains("pairs_meshed=2"));
        assert!(line.contains("forks=1"));
        assert!(line.contains("transfer_hits=0"));
        assert!(line.contains("remote_free_batches=0"));
        assert!(line.contains("harden_poison=3"), "{line}");
        assert!(line.contains("harden_double_free=0"), "{line}");
        assert!(line.contains("harden_canary=0"), "{line}");
    }

    #[test]
    fn render_appends_spectrum_when_present() {
        let mut s = Counters::default().snapshot();
        assert!(
            !s.render().contains("spectrum="),
            "bare counter snapshots carry no spectrum"
        );
        s.spectrum.classes[0] = crate::telemetry::ClassSpectrum {
            object_size: 16,
            attached_spans: 1,
            bins: [0, 0, 0, 2, 0],
            live_objects: 3,
            total_slots: 768,
            est_meshable_pairs: 1,
            meshable: true,
        };
        let line = s.render();
        assert!(line.contains("spectrum=16B:a1+p0/0/0/2+f0~1"), "{line}");
        assert!(line.contains("est_releasable_bytes=4096"), "{line}");
        assert!(!line.contains('\n'), "render stays one line");
    }

    #[test]
    fn local_blocks_count_toward_snapshot_without_flush() {
        let c = Counters::default();
        let block = c.register_local();
        block.on_malloc(112);
        block.on_malloc(112);
        block.on_free(112);
        let s = c.snapshot();
        assert_eq!(s.mallocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, 112);
        // Flushing moves the deltas but changes no totals.
        c.flush_local(&block);
        let s = c.snapshot();
        assert_eq!((s.mallocs, s.frees, s.live_bytes), (2, 1, 112));
        assert_eq!(c.mallocs.load(Ordering::Relaxed), 2, "deltas folded in");
    }

    #[test]
    fn unregister_preserves_totals() {
        let c = Counters::default();
        let block = c.register_local();
        block.on_malloc(64);
        c.unregister_local(&block);
        let s = c.snapshot();
        assert_eq!(s.mallocs, 1);
        assert_eq!(s.live_bytes, 64);
    }

    #[test]
    fn remote_free_before_flush_sums_exactly() {
        // Thread A allocates (delta unflushed); the remote drain frees it
        // against the shared counter first. The transient shared value
        // wraps, but the snapshot sum is exact.
        let c = Counters::default();
        let block = c.register_local();
        block.on_malloc(4096);
        c.live_bytes.fetch_sub(4096, Ordering::Relaxed); // drain-side free
        c.frees.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.mallocs, 1);
        assert_eq!(s.frees, 1);
        c.unregister_local(&block);
        assert_eq!(c.snapshot().live_bytes, 0);
    }

    #[test]
    fn render_appends_latency_lines_only_when_ops_fired() {
        let c = Counters::default();
        let bare = c.snapshot().render();
        assert!(!bare.contains('\n'), "no ops fired, one line");
        assert!(bare.contains("uptime_ms="), "uptime always present");
        c.record_wait(TimedOp::Refill, 5_000, 0);
        c.record_wait(TimedOp::Refill, 50_000, 0);
        let line = c.snapshot().render();
        let latency: Vec<&str> = line
            .lines()
            .filter(|l| l.starts_with("mesh-latency: "))
            .collect();
        assert_eq!(latency.len(), 1, "only the fired op is rendered: {line}");
        assert!(latency[0].contains("op=refill count=2"), "{line}");
        assert!(latency[0].contains("max_ns=50000"), "{line}");
    }

    #[test]
    fn lock_waits_become_mutator_pauses_only_under_meshing() {
        let c = Counters::default();
        c.record_lock_wait(TimedOp::ClassLockWait, 1_000);
        assert_eq!(c.latency_snapshot().count(TimedOp::MutatorPause), 0);
        c.mesh_active.fetch_add(1, Ordering::Relaxed);
        c.record_lock_wait(TimedOp::ClassLockWait, 2_000);
        assert_eq!(c.latency_snapshot().count(TimedOp::MutatorPause), 1);
        // The mesher's own waits are never pauses.
        set_in_mesh_pass(true);
        c.record_lock_wait(TimedOp::ArenaLockWait, 3_000);
        set_in_mesh_pass(false);
        let snap = c.latency_snapshot();
        assert_eq!(snap.count(TimedOp::MutatorPause), 1);
        assert_eq!(snap.count(TimedOp::ClassLockWait), 2);
        assert_eq!(snap.count(TimedOp::ArenaLockWait), 1);
        // Fork child wipes latency history.
        c.zero_latency();
        assert!(c.latency_snapshot().is_empty());
    }

    #[test]
    fn record_slow_feeds_hist_and_trace() {
        let c = Counters::default();
        let cfg = crate::MeshConfig::default().tracing(true).trace_buf_events(64);
        c.set_trace(TraceSet::new(&cfg).unwrap());
        c.record_slow(TimedOp::MeshPass, Instant::now(), 7);
        assert_eq!(c.latency_snapshot().count(TimedOp::MeshPass), 1);
        let json = c.trace_set().unwrap().chrome_json(c.uptime_ms());
        assert!(json.contains("\"name\":\"mesh_pass\""), "{json}");
        assert!(json.contains("\"args\":{\"arg\":7}"), "{json}");
    }

    #[test]
    fn record_mesh_pass_tracks_longest() {
        let c = Counters::default();
        c.record_mesh_pass(5);
        c.record_mesh_pass(50);
        c.record_mesh_pass(10);
        let s = c.snapshot();
        assert_eq!(s.mesh_passes, 3);
        assert_eq!(s.mesh_nanos, 65);
        assert_eq!(s.mesh_longest_pause_nanos, 50);
    }
}
