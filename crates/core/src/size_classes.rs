//! Segregated-fit size classes (§4).
//!
//! Mesh is a segregated-fit allocator: every span holds objects of exactly
//! one size class. Like the paper we use jemalloc's fine-grained classes for
//! objects up to 1024 bytes and power-of-two classes between 1024 bytes and
//! 16 KiB — 24 classes in total. Allocations are fulfilled from the smallest
//! class they fit (e.g. a 33–48 byte request is served from the 48-byte
//! class); requests larger than [`MAX_SMALL_SIZE`] are *large objects*
//! handled individually by the global heap.
//!
//! Span geometry follows §4: spans are multiples of the 4 KiB page size and
//! contain between [`MIN_OBJECTS_PER_SPAN`] and [`MAX_OBJECTS_PER_SPAN`]
//! objects. The 256-object ceiling is what lets shuffle-vector offsets fit
//! in one byte (§4.2); the 8-object floor amortizes the cost of fetching a
//! span from the global heap.

/// Hardware page size assumed throughout (x86-64 / aarch64 default).
pub const PAGE_SIZE: usize = 4096;

/// Largest size (bytes) served from size-classed spans; bigger requests are
/// large objects (§4.4.3).
pub const MAX_SMALL_SIZE: usize = 16 * 1024;

/// Minimum number of objects in a span (§4).
pub const MIN_OBJECTS_PER_SPAN: usize = 8;

/// Maximum number of objects in a span; keeps shuffle-vector offsets in one
/// byte (§4.2).
pub const MAX_OBJECTS_PER_SPAN: usize = 256;

/// The object sizes of every class, ascending.
///
/// Classes ≤ 1024 are the jemalloc small classes (the 8-byte class is
/// folded into 16 so a one-page span never exceeds 256 slots — the
/// reference implementation makes the same choice); classes above 1024 are
/// powers of two up to 16 KiB.
pub const SIZE_CLASSES: [usize; 24] = [
    16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896,
    1024, 2048, 4096, 8192, 16384,
];

/// Number of size classes (`c` in §4.2's space-overhead analysis).
pub const NUM_SIZE_CLASSES: usize = SIZE_CLASSES.len();

/// Span length in pages for each size class, chosen as the smallest
/// page-multiple giving at least [`MIN_OBJECTS_PER_SPAN`] objects.
pub const SPAN_PAGES: [usize; 24] = {
    let mut pages = [0usize; 24];
    let mut i = 0;
    while i < 24 {
        let size = SIZE_CLASSES[i];
        let mut p = 1;
        while (p * PAGE_SIZE) / size < MIN_OBJECTS_PER_SPAN {
            p *= 2;
        }
        pages[i] = p;
        i += 1;
    }
    pages
};

/// A validated size-class index.
///
/// Newtype so the rest of the allocator cannot confuse class indices with
/// object sizes or span offsets.
///
/// # Examples
///
/// ```
/// use mesh_core::size_classes::SizeClass;
///
/// let c = SizeClass::for_size(33).unwrap();
/// assert_eq!(c.object_size(), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeClass(u8);

impl SizeClass {
    /// Returns the smallest size class that can hold `size` bytes, or
    /// `None` if the request is a large object (`size > MAX_SMALL_SIZE`).
    ///
    /// A zero-byte request is served from the smallest class, matching
    /// `malloc(0)` returning a unique pointer.
    #[inline]
    pub fn for_size(size: usize) -> Option<SizeClass> {
        if size > MAX_SMALL_SIZE {
            return None;
        }
        if size <= 1024 {
            // 16-byte-granular lookup table for the sub-1 KiB classes.
            let bucket = size.div_ceil(16); // 0..=64
            Some(SizeClass(SUB_1K_LOOKUP[bucket]))
        } else {
            // Power-of-two classes: 2048, 4096, 8192, 16384.
            let pow = usize::BITS - (size - 1).leading_zeros(); // ceil(log2(size))
            Some(SizeClass(20 + (pow - 11) as u8))
        }
    }

    /// Returns the class with index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_SIZE_CLASSES`.
    #[inline]
    pub fn from_index(idx: usize) -> SizeClass {
        assert!(idx < NUM_SIZE_CLASSES, "size class index {idx} out of range");
        SizeClass(idx as u8)
    }

    /// The index of this class in `SIZE_CLASSES`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The object size in bytes served by this class.
    #[inline]
    pub fn object_size(self) -> usize {
        SIZE_CLASSES[self.0 as usize]
    }

    /// Span length in pages for this class.
    #[inline]
    pub fn span_pages(self) -> usize {
        SPAN_PAGES[self.0 as usize]
    }

    /// Span length in bytes for this class.
    #[inline]
    pub fn span_bytes(self) -> usize {
        self.span_pages() * PAGE_SIZE
    }

    /// Number of object slots in a span of this class
    /// (`objectCount = spanSize / objSize`, §4.1).
    #[inline]
    pub fn object_count(self) -> usize {
        self.span_bytes() / self.object_size()
    }

    /// Whether spans of this class participate in meshing.
    ///
    /// Objects of 4 KiB and larger are page-aligned, span whole pages and
    /// are never meshed (§4); their pages are released directly on free.
    #[inline]
    pub fn is_meshable(self) -> bool {
        self.object_size() < PAGE_SIZE
    }

    /// Iterator over all size classes, ascending.
    pub fn all() -> impl Iterator<Item = SizeClass> {
        (0..NUM_SIZE_CLASSES).map(|i| SizeClass(i as u8))
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class#{}({}B)", self.0, self.object_size())
    }
}

/// Lookup table: `(size + 15) / 16` → class index, for sizes 0..=1024.
const SUB_1K_LOOKUP: [u8; 65] = {
    let mut table = [0u8; 65];
    let mut bucket = 0;
    while bucket <= 64 {
        let size = bucket * 16; // largest size mapping to this bucket
        let mut cls = 0;
        while SIZE_CLASSES[cls] < size {
            cls += 1;
        }
        table[bucket] = cls as u8;
        bucket += 1;
    }
    table
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_16_aligned() {
        for w in SIZE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &s in &SIZE_CLASSES {
            assert_eq!(s % 16, 0, "class {s} not 16-byte aligned");
        }
    }

    #[test]
    fn paper_example_33_to_48() {
        // §4: "objects of size 33–48 bytes are served from the 48-byte class".
        for size in 33..=48 {
            assert_eq!(SizeClass::for_size(size).unwrap().object_size(), 48);
        }
    }

    #[test]
    fn for_size_returns_smallest_fitting_class() {
        for size in 0..=MAX_SMALL_SIZE {
            let c = SizeClass::for_size(size).unwrap();
            assert!(c.object_size() >= size, "size {size} got class {c}");
            if c.index() > 0 {
                let prev = SizeClass::from_index(c.index() - 1);
                assert!(
                    prev.object_size() < size,
                    "size {size} should fit in smaller class {prev}"
                );
            }
        }
    }

    #[test]
    fn large_requests_have_no_class() {
        assert_eq!(SizeClass::for_size(MAX_SMALL_SIZE + 1), None);
        assert_eq!(SizeClass::for_size(1 << 30), None);
    }

    #[test]
    fn object_counts_within_span_limits() {
        // §4: spans contain between 8 and 256 objects of a fixed size.
        for c in SizeClass::all() {
            let n = c.object_count();
            assert!(
                (MIN_OBJECTS_PER_SPAN..=MAX_OBJECTS_PER_SPAN).contains(&n),
                "{c}: {n} objects per span"
            );
        }
    }

    #[test]
    fn span_pages_are_minimal() {
        for c in SizeClass::all() {
            let p = c.span_pages();
            if p > 1 {
                // Halving the span must violate the 8-object floor.
                assert!(
                    (p / 2 * PAGE_SIZE) / c.object_size() < MIN_OBJECTS_PER_SPAN,
                    "{c}: span of {p} pages not minimal"
                );
            }
        }
    }

    #[test]
    fn twenty_four_classes_as_in_paper() {
        assert_eq!(NUM_SIZE_CLASSES, 24);
    }

    #[test]
    fn zero_size_served_from_smallest_class() {
        assert_eq!(SizeClass::for_size(0).unwrap().object_size(), 16);
    }

    #[test]
    fn pow2_class_boundaries() {
        assert_eq!(SizeClass::for_size(1024).unwrap().object_size(), 1024);
        assert_eq!(SizeClass::for_size(1025).unwrap().object_size(), 2048);
        assert_eq!(SizeClass::for_size(2048).unwrap().object_size(), 2048);
        assert_eq!(SizeClass::for_size(2049).unwrap().object_size(), 4096);
        assert_eq!(SizeClass::for_size(16384).unwrap().object_size(), 16384);
    }

    #[test]
    fn meshability_cutoff_at_page_size() {
        for c in SizeClass::all() {
            assert_eq!(c.is_meshable(), c.object_size() < PAGE_SIZE, "{c}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SizeClass::from_index(0)).is_empty());
        assert!(!format!("{:?}", SizeClass::from_index(3)).is_empty());
    }
}
