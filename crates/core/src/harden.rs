//! Hardened heap mode (`MESH_HARDEN`): poisoning, quarantine, guard
//! pages, and canary-checked meshing.
//!
//! Mesh's page-map-routed free path already *detects* double and invalid
//! frees in O(1) (§4.4.4); this module adds the fail-safe layer on top,
//! following the security-heap reading of the same design (Vintila et
//! al., "MESH: A Memory-Efficient Safe Heap for C/C++"): freed memory is
//! filled with a poison pattern and re-verified on reallocation, reuse is
//! delayed through a randomized per-thread quarantine, large objects get
//! a `PROT_NONE` trailing guard page, and the mesher doubles as a
//! corruption sweep by validating the canaries of free slots inside the
//! copy window. Every detection feeds one policy switch: *count* (bump a
//! `harden_*` counter and keep going) or *abort* (one-line diagnostic on
//! the dup'd stderr fd, then `SIGABRT`).
//!
//! The poison layout of a free small object is one 8-byte canary word at
//! offset 0 (keyed by the heap seed and the size class — *not* the
//! address, which meshing deliberately aliases) followed by
//! [`POISON_BYTE`] fill. Objects smaller than a canary word are pure
//! fill. All free-path transitions write this layout, so verification at
//! the two malloc hand-out points needs no extra state.

use std::sync::atomic::{AtomicI32, Ordering};

/// Fill byte for freed small-object memory (and the count-mode guard
/// tail of large objects). 0xF5 is non-zero, non-pointer-like, and odd
/// enough that a UAF write of zeros or small integers is caught.
pub const POISON_BYTE: u8 = 0xF5;

/// Number of distinct hardening violation kinds.
pub const HARDEN_KINDS: usize = 5;

/// What kind of heap-corruption event hardened mode detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardenKind {
    /// A free of an object that is already free (or quarantined).
    DoubleFree = 0,
    /// A free of a pointer the heap does not own, or an interior /
    /// misaligned pointer into a span.
    InvalidFree = 1,
    /// Poison or canary bytes of a *free* object were overwritten — a
    /// use-after-free write, caught at reallocation or quarantine drain.
    Poison = 2,
    /// The guard tail of a large object was overwritten — a linear
    /// overflow, caught at free (count mode; abort mode faults instead).
    Guard = 3,
    /// A free slot's canary was found corrupted during the mesh copy
    /// window; the pair is rejected (`canary_trip` in the ledger).
    Canary = 4,
}

/// Every kind, in counter-index order.
pub const ALL_HARDEN_KINDS: [HardenKind; HARDEN_KINDS] = [
    HardenKind::DoubleFree,
    HardenKind::InvalidFree,
    HardenKind::Poison,
    HardenKind::Guard,
    HardenKind::Canary,
];

impl HardenKind {
    /// Stable snake_case name, used as the Prometheus `kind` label, the
    /// `render()` key suffix, and the abort diagnostic.
    pub fn name(self) -> &'static str {
        match self {
            HardenKind::DoubleFree => "double_free",
            HardenKind::InvalidFree => "invalid_free",
            HardenKind::Poison => "poison",
            HardenKind::Guard => "guard",
            HardenKind::Canary => "canary",
        }
    }
}

/// The die-vs-count policy (`MESH_HARDEN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HardenPolicy {
    /// Hardening fully off: no poisoning, no quarantine, no guards, no
    /// canary sweep — the default, preserving the baseline fast path.
    #[default]
    Off,
    /// Detections bump `harden_*` counters and execution continues
    /// (`MESH_HARDEN=count`/`counts`/`full`).
    Count,
    /// Detections write a one-line diagnostic to the abort fd and raise
    /// `SIGABRT` (`MESH_HARDEN=abort`/`die`).
    Abort,
}

/// Parses a `MESH_HARDEN` policy value: `off`/`0`/`false`/`no`,
/// `count`/`counts`/`1`/`true`/`yes`/`on`/`full`, or `abort`/`die`.
pub fn parse_harden_policy(s: &str) -> Option<HardenPolicy> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" | "no" => Some(HardenPolicy::Off),
        "count" | "counts" | "1" | "true" | "yes" | "on" | "full" => Some(HardenPolicy::Count),
        "abort" | "die" => Some(HardenPolicy::Abort),
        _ => None,
    }
}

/// The resolved hardening configuration a heap runs with: the policy
/// plus the per-feature switches (each defaulting to "on whenever the
/// policy is not `Off`", individually overridable via
/// `MESH_HARDEN_POISON` / `_QUARANTINE` / `_GUARD` / `_CANARY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenConfig {
    /// Count or die on detection.
    pub policy: HardenPolicy,
    /// Free poisoning + verification on reallocation.
    pub poison: bool,
    /// Delayed-reuse quarantine on the local free path.
    pub quarantine: bool,
    /// Trailing guard page on large objects.
    pub guard: bool,
    /// Canary validation of free slots during mesh copy windows
    /// (requires `poison`, which writes the canaries).
    pub canary: bool,
    /// Byte cap of the per-thread quarantine (`MESH_HARDEN_QUARANTINE_BYTES`).
    pub quarantine_bytes: usize,
    /// Slot cap of the per-thread quarantine (`MESH_HARDEN_QUARANTINE_SLOTS`).
    pub quarantine_slots: usize,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            policy: HardenPolicy::Off,
            poison: true,
            quarantine: true,
            guard: true,
            canary: true,
            quarantine_bytes: 256 << 10,
            quarantine_slots: 512,
        }
    }
}

impl HardenConfig {
    /// Whether hardened mode is active at all.
    #[inline]
    pub fn active(&self) -> bool {
        self.policy != HardenPolicy::Off
    }

    /// Whether detections abort the process.
    #[inline]
    pub fn aborts(&self) -> bool {
        self.policy == HardenPolicy::Abort
    }

    /// Whether free poisoning (and verification) is active.
    #[inline]
    pub fn poison_on(&self) -> bool {
        self.active() && self.poison
    }

    /// Whether the delayed-reuse quarantine is active.
    #[inline]
    pub fn quarantine_on(&self) -> bool {
        self.active() && self.quarantine
    }

    /// Whether large-object guard pages are active.
    #[inline]
    pub fn guard_on(&self) -> bool {
        self.active() && self.guard
    }

    /// Whether the mesh-time canary sweep is active (needs poisoning to
    /// have written the canaries).
    #[inline]
    pub fn canary_on(&self) -> bool {
        self.active() && self.canary && self.poison
    }
}

/// The canary word for size class `class_idx` under heap seed `seed`.
///
/// Keyed by *class*, never by address: meshing remaps virtual spans onto
/// shared physical spans, so the same free slot is legitimately read
/// through several addresses — an address-keyed canary would
/// false-positive after the first mesh. One splitmix64 step over
/// `seed ^ class` gives unrelated words per class without any state.
#[inline]
pub fn canary_word(seed: u64, class_idx: usize) -> u64 {
    let mut z = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(class_idx as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Writes the free-object poison layout over `[addr, addr+size)`: the
/// canary word at offset 0 (when `size >= 8`), [`POISON_BYTE`] fill for
/// the rest.
///
/// # Safety
///
/// `addr..addr+size` must be writable memory owned by the caller with no
/// live object in it.
#[inline]
pub unsafe fn poison_fill(addr: usize, size: usize, canary: u64) {
    let p = addr as *mut u8;
    if size >= 8 {
        (p as *mut u64).write_unaligned(canary);
        std::ptr::write_bytes(p.add(8), POISON_BYTE, size - 8);
    } else {
        std::ptr::write_bytes(p, POISON_BYTE, size);
    }
}

/// Verifies the poison layout written by [`poison_fill`]. Returns `true`
/// when every byte is intact.
///
/// # Safety
///
/// `addr..addr+size` must be readable memory owned by the caller.
#[inline]
pub unsafe fn poison_verify(addr: usize, size: usize, canary: u64) -> bool {
    let p = addr as *const u8;
    let body = if size >= 8 {
        if (p as *const u64).read_unaligned() != canary {
            return false;
        }
        &std::slice::from_raw_parts(p, size)[8..]
    } else {
        std::slice::from_raw_parts(p, size)
    };
    body.iter().all(|&b| b == POISON_BYTE)
}

/// Checks only the canary word of a free slot (the cheap per-slot probe
/// the meshing copy window uses; sub-word slots fall back to the full
/// fill check, which is just as cheap at those sizes). Returns `true`
/// when intact.
///
/// # Safety
///
/// `addr..addr+size` must be readable memory owned by the caller.
#[inline]
pub unsafe fn canary_intact(addr: usize, size: usize, canary: u64) -> bool {
    if size >= 8 {
        (addr as *const u64).read_unaligned() == canary
    } else {
        std::slice::from_raw_parts(addr as *const u8, size)
            .iter()
            .all(|&b| b == POISON_BYTE)
    }
}

/// Fd the abort diagnostic is written to. Defaults to stderr (2); the
/// `LD_PRELOAD` layer points it at its dup'd stderr so the line survives
/// programs that close or redirect fd 2 after startup.
static ABORT_FD: AtomicI32 = AtomicI32::new(2);

/// Points the abort diagnostic at `fd` (the ABI layer's dup'd stderr).
pub fn set_abort_fd(fd: i32) {
    ABORT_FD.store(fd, Ordering::Relaxed);
}

/// Writes the one-line abort diagnostic and terminates with `SIGABRT`.
///
/// Async-signal-safe by construction: the message is formatted into a
/// stack buffer and written with one raw `write(2)` — no allocation, no
/// locks, no stdio — because the violation may be detected inside an
/// interposed `malloc` under arbitrary application state.
pub(crate) fn harden_abort(kind: HardenKind, addr: usize) -> ! {
    let mut buf = [0u8; 96];
    let mut n = 0usize;
    let put = |bytes: &[u8], buf: &mut [u8; 96], n: &mut usize| {
        for &b in bytes {
            if *n < buf.len() {
                buf[*n] = b;
                *n += 1;
            }
        }
    };
    put(b"mesh: harden abort kind=", &mut buf, &mut n);
    put(kind.name().as_bytes(), &mut buf, &mut n);
    put(b" addr=0x", &mut buf, &mut n);
    let mut hex = [0u8; 16];
    let mut len = 0usize;
    let mut v = addr;
    loop {
        hex[len] = b"0123456789abcdef"[v & 0xf];
        len += 1;
        v >>= 4;
        if v == 0 {
            break;
        }
    }
    for i in (0..len).rev() {
        put(&[hex[i]], &mut buf, &mut n);
    }
    put(b"\n", &mut buf, &mut n);
    let fd = ABORT_FD.load(Ordering::Relaxed);
    unsafe {
        crate::ffi::write(fd, buf.as_ptr() as *const crate::ffi::c_void, n);
    }
    // SIGABRT without unwinding or atexit machinery, exactly like
    // glibc's own heap-corruption aborts.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_indexed() {
        for (i, k) in ALL_HARDEN_KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
        assert_eq!(HardenKind::DoubleFree.name(), "double_free");
        assert_eq!(HardenKind::Canary.name(), "canary");
    }

    #[test]
    fn policy_parses_all_spellings() {
        for s in ["off", "0", "FALSE", "no"] {
            assert_eq!(parse_harden_policy(s), Some(HardenPolicy::Off), "{s}");
        }
        for s in ["count", "counts", "1", "on", "FULL", "true", "yes"] {
            assert_eq!(parse_harden_policy(s), Some(HardenPolicy::Count), "{s}");
        }
        for s in ["abort", "DIE"] {
            assert_eq!(parse_harden_policy(s), Some(HardenPolicy::Abort), "{s}");
        }
        assert_eq!(parse_harden_policy("sometimes"), None);
        assert_eq!(parse_harden_policy(""), None);
    }

    #[test]
    fn config_gates_features_on_policy() {
        let off = HardenConfig::default();
        assert!(!off.active() && !off.poison_on() && !off.quarantine_on());
        assert!(!off.guard_on() && !off.canary_on() && !off.aborts());
        let count = HardenConfig {
            policy: HardenPolicy::Count,
            ..HardenConfig::default()
        };
        assert!(count.active() && count.poison_on() && count.quarantine_on());
        assert!(count.guard_on() && count.canary_on() && !count.aborts());
        let abort = HardenConfig {
            policy: HardenPolicy::Abort,
            ..HardenConfig::default()
        };
        assert!(abort.aborts());
        // Canary needs poison to have written the canaries.
        let no_poison = HardenConfig {
            policy: HardenPolicy::Count,
            poison: false,
            ..HardenConfig::default()
        };
        assert!(!no_poison.canary_on());
    }

    #[test]
    fn canary_words_differ_by_class_and_seed() {
        let a = canary_word(7, 0);
        assert_eq!(a, canary_word(7, 0), "deterministic");
        assert_ne!(a, canary_word(7, 1), "class-keyed");
        assert_ne!(a, canary_word(8, 0), "seed-keyed");
    }

    #[test]
    fn poison_roundtrip_and_detection() {
        for size in [4usize, 8, 16, 48, 256, 8192] {
            let mut buf = vec![0u8; size];
            let addr = buf.as_mut_ptr() as usize;
            let canary = canary_word(42, 3);
            unsafe {
                poison_fill(addr, size, canary);
                assert!(poison_verify(addr, size, canary), "size {size}");
                // A single flipped byte anywhere must be caught.
                for at in [0, size / 2, size - 1] {
                    let was = buf[at];
                    buf[at] ^= 0xFF;
                    assert!(!poison_verify(addr, size, canary), "size {size} at {at}");
                    buf[at] = was;
                }
                assert!(poison_verify(addr, size, canary));
            }
        }
    }

    #[test]
    fn sub_word_objects_are_pure_fill() {
        let mut buf = [0u8; 4];
        let addr = buf.as_mut_ptr() as usize;
        unsafe {
            poison_fill(addr, 4, canary_word(1, 1));
            assert_eq!(buf, [POISON_BYTE; 4]);
            assert!(poison_verify(addr, 4, canary_word(9, 9)), "no canary below 8 bytes");
        }
    }
}
