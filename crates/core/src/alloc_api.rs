//! The public allocator API: [`Mesh`] heaps, per-thread [`ThreadHeap`]
//! handles, and a [`MeshGlobalAlloc`] adapter implementing
//! [`std::alloc::GlobalAlloc`] (the Rust analog of the paper's
//! `LD_PRELOAD` interposition).

use crate::config::MeshConfig;
use crate::error::MeshError;
use crate::global_heap::GlobalHeap;
use crate::local_heap::ThreadHeapCore;
use crate::mesher::BackgroundMesher;
use crate::meshing::MeshSummary;
use crate::rng::Rng;
use crate::size_classes::{SizeClass, MAX_SMALL_SIZE, PAGE_SIZE};
use crate::stats::{Counters, HeapStats};
use crate::sync::{Mutex, MutexGuard};
use crate::sys::ReleaseStrategy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub(crate) struct MeshInner {
    /// The sharded global heap: all entry points are `&self` and take
    /// only the shard locks they need.
    pub state: GlobalHeap,
    pub counters: Arc<Counters>,
    base: usize,
    bytes: usize,
    seed_base: u64,
    randomize: bool,
    token_gen: AtomicU64,
    main: Mutex<ThreadHeapCore>,
    /// Background meshing thread handle; dropping it (with the heap)
    /// signals the thread to exit. Behind a mutex so a forked child —
    /// where the parent's thread does not exist — can swap in a fresh one.
    mesher: Mutex<Option<BackgroundMesher>>,
}

impl std::fmt::Debug for MeshInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshInner")
            .field("base", &(self.base as *const u8))
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

/// A Mesh heap: a compacting, meshing memory allocator (the paper's
/// drop-in `malloc` replacement, §4).
///
/// `Mesh` is cheaply cloneable (a handle to shared state) and `Send +
/// Sync`. Allocation through `Mesh` itself serializes on an internal
/// default thread heap — convenient for examples and single-threaded use;
/// multi-threaded applications should give each thread its own
/// [`ThreadHeap`] via [`Mesh::thread_heap`] to get the lock-free fast path
/// of §4.3. The global heap behind the handles is sharded per size class,
/// so even refills from different classes never contend on a common lock.
///
/// # Examples
///
/// ```
/// use mesh_core::{Mesh, MeshConfig};
///
/// # fn main() -> Result<(), mesh_core::MeshError> {
/// let mesh = Mesh::new(MeshConfig::default().seed(1).arena_bytes(32 << 20))?;
/// let p = mesh.malloc(128);
/// assert!(!p.is_null());
/// unsafe {
///     std::ptr::write_bytes(p, 0xAB, 128);
///     mesh.free(p);
/// }
/// let summary = mesh.mesh_now();
/// println!("meshed {} pairs", summary.pairs_meshed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    inner: Arc<MeshInner>,
}

impl Mesh {
    /// Creates a heap with the given configuration. With
    /// [`MeshConfig::background_meshing`] set, also spawns the dedicated
    /// meshing thread (stopped again when the last handle drops).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::InvalidConfig`] for bad configurations and
    /// [`MeshError::ArenaCreation`]/[`MeshError::Map`] if the backing
    /// arena cannot be established.
    pub fn new(config: MeshConfig) -> Result<Mesh, MeshError> {
        config.validate()?;
        let counters = Arc::new(Counters::default());
        let state = GlobalHeap::new(config.clone(), Arc::clone(&counters))?;
        let base = state.base_addr();
        let bytes = state.capacity_pages() as usize * PAGE_SIZE;
        let seed_base = config
            .seed
            .unwrap_or_else(|| Rng::from_entropy().next_u64());
        let randomize = config.randomize;
        // The background thread serves two masters: background meshing
        // and telemetry (interval/signal-requested profile dumps). Spawn
        // it when either wants it; the run loop only meshes when
        // background meshing is actually configured.
        let background = state.background_thread_wanted();
        let main = ThreadHeapCore::new(
            seed_base ^ 0x6d61_696e,
            randomize,
            0,
            Arc::clone(&counters),
            state.telemetry.clone(),
            true,
        );
        let inner = Arc::new_cyclic(|weak| MeshInner {
            state,
            counters,
            base,
            bytes,
            seed_base,
            randomize,
            token_gen: AtomicU64::new(1),
            main: Mutex::new(main),
            mesher: Mutex::new(background.then(|| BackgroundMesher::spawn(weak.clone()))),
        });
        Ok(Mesh { inner })
    }

    /// Allocates `size` bytes, 16-byte aligned (page-aligned above 16 KiB).
    /// The segmented arena grows on demand; null is returned only when the
    /// configured hard cap (`max_heap_bytes`) has no room — never panics.
    pub fn malloc(&self, size: usize) -> *mut u8 {
        with_internal_alloc(|| self.inner.main.lock().malloc(&self.inner.state, size))
    }

    /// Allocates `size` bytes with alignment `align` (any power of two).
    /// Alignments up to the page size are served in-class by rounding the
    /// request to a class whose object size is a multiple of the
    /// alignment; larger alignments over-allocate on the large path and
    /// return the first aligned address inside the span. Returns null on
    /// exhaustion.
    pub fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(align.is_power_of_two());
        if align > PAGE_SIZE {
            return with_internal_alloc(|| {
                match self.inner.state.malloc_large_aligned(size, align) {
                    Ok(addr) => addr as *mut u8,
                    Err(_) => std::ptr::null_mut(),
                }
            });
        }
        let request = aligned_request(size, align);
        self.malloc(request)
    }

    /// Allocates zeroed memory for `count` elements of `size` bytes
    /// (`calloc`). Returns null on overflow or exhaustion.
    pub fn calloc(&self, count: usize, size: usize) -> *mut u8 {
        let Some(total) = count.checked_mul(size) else {
            return std::ptr::null_mut();
        };
        let p = self.malloc(total);
        if !p.is_null() {
            // Spans reused under the MADV_DONTNEED release strategy may
            // hold stale bytes, so calloc always zeroes explicitly.
            unsafe { std::ptr::write_bytes(p, 0, total) };
        }
        p
    }

    /// Resizes the allocation at `ptr` to `new_size` bytes (`realloc`).
    /// Growing or shrinking within the same size class — or within a
    /// large allocation's page span — returns the original pointer with
    /// no copy (see [`Mesh::realloc_in_place`]).
    ///
    /// # Safety
    ///
    /// `ptr` must be null or a live pointer from this heap; after a
    /// non-null return the old pointer must not be used.
    pub unsafe fn realloc(&self, ptr: *mut u8, new_size: usize) -> *mut u8 {
        if ptr.is_null() {
            return self.malloc(new_size);
        }
        if self.realloc_in_place(ptr, new_size) {
            return ptr;
        }
        let usable = self.usable_size(ptr).unwrap_or(0);
        let fresh = self.malloc(new_size);
        if !fresh.is_null() {
            std::ptr::copy_nonoverlapping(ptr, fresh, usable.min(new_size));
            self.free(ptr);
        }
        fresh
    }

    /// Whether the allocation at `ptr` already satisfies `new_size` in
    /// place — the `realloc` fast path, one page-map resolution. True
    /// (counting one `reallocs_in_place`) when the new size maps to the
    /// *same size class*, or, for large allocations, still fits the page
    /// span without leaving more than half of it dead. The allocation is
    /// not touched either way; on `true` the caller keeps using `ptr`.
    pub fn realloc_in_place(&self, ptr: *mut u8, new_size: usize) -> bool {
        let in_place = self
            .inner
            .state
            .realloc_fits_in_place(ptr as usize, new_size);
        if in_place {
            self.inner
                .counters
                .reallocs_in_place
                .fetch_add(1, Ordering::Relaxed);
        }
        in_place
    }

    /// Frees `ptr`. Null is ignored; foreign pointers and double frees are
    /// detected on the global path and discarded (§4.4.4).
    ///
    /// # Safety
    ///
    /// `ptr` must be null or a pointer obtained from this heap that has
    /// not been freed since (same contract as C `free`).
    pub unsafe fn free(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        with_internal_alloc(|| {
            self.inner.main.lock().free(&self.inner.state, ptr);
        });
    }

    /// Usable size of the allocation at `ptr` (`malloc_usable_size`), or
    /// `None` for foreign pointers. Lock-free for small objects.
    pub fn usable_size(&self, ptr: *mut u8) -> Option<usize> {
        self.inner.state.usable_size(ptr as usize)
    }

    /// Whether `ptr` points into this heap's arena.
    #[inline]
    pub fn contains(&self, ptr: *const u8) -> bool {
        let a = ptr as usize;
        a >= self.inner.base && a < self.inner.base + self.inner.bytes
    }

    /// Creates a handle for lock-free allocation on the calling thread
    /// (§4.3). The handle returns its spans to the global heap on drop.
    pub fn thread_heap(&self) -> ThreadHeap {
        let token = self.inner.token_gen.fetch_add(1, Ordering::Relaxed);
        ThreadHeap {
            core: ThreadHeapCore::new(
                self.inner.seed_base.wrapping_add(token.wrapping_mul(0x9e37_79b9)),
                self.inner.randomize,
                token,
                Arc::clone(&self.inner.counters),
                self.inner.state.telemetry.clone(),
                true,
            ),
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs a meshing pass immediately, bypassing the rate limiter.
    pub fn mesh_now(&self) -> MeshSummary {
        // Internal-allocation guard: meshing allocates candidate lists
        // while shard locks are held. When this heap also serves as the
        // process allocator (`MeshGlobalAlloc`), those allocations must
        // not recurse into Mesh or they would retake the locks.
        with_internal_alloc(|| self.inner.state.mesh_now())
    }

    /// Releases all dirty pages to the OS immediately, then retires any
    /// non-initial segment left with all pages clean (unmapping it and
    /// returning its file backing wholesale).
    pub fn purge_dirty(&self) {
        with_internal_alloc(|| self.inner.state.purge_and_retire());
    }

    /// Per-segment accounting snapshots of the segmented arena, in
    /// address order (takes the arena leaf lock briefly).
    pub fn segment_stats(&self) -> Vec<crate::segment::SegmentStats> {
        with_internal_alloc(|| self.inner.state.segment_stats())
    }

    /// Bytes currently mapped to segment files — the virtual footprint of
    /// the active segments (lock-free; `heap_bytes() ≤ mapped_bytes()`).
    pub fn mapped_bytes(&self) -> usize {
        self.inner.counters.mapped_pages.load(Ordering::Relaxed) * PAGE_SIZE
    }

    /// A snapshot of heap statistics. Flushes every class's remote-free
    /// queue first so `frees`/`live_bytes` reflect all queued frees.
    /// The occupancy spectrum is left empty — counters only, so periodic
    /// samplers can call this concurrently with workers without walking
    /// every MiniHeap under the shard locks; use
    /// [`Mesh::stats_with_spectrum`] where meshability matters.
    pub fn stats(&self) -> HeapStats {
        // The snapshot itself allocates (spectrum vectors, latency
        // buckets) — it must stay inside the guard too, or an interposed
        // process samples its own exposition path.
        with_internal_alloc(|| {
            self.inner.state.drain_all();
            self.inner.counters.snapshot()
        })
    }

    /// [`Mesh::stats`] plus the occupancy spectrum filled in
    /// ([`HeapStats::spectrum`]), so `render()` shows meshability at a
    /// glance — the snapshot behind `malloc_stats(3)` and the exit dump.
    /// Walks every MiniHeap, one class shard lock at a time.
    pub fn stats_with_spectrum(&self) -> HeapStats {
        with_internal_alloc(|| {
            self.inner.state.drain_all();
            let mut stats = self.inner.counters.snapshot();
            stats.spectrum = self.inner.state.occupancy_spectrum();
            stats
        })
    }

    /// Current physical heap footprint in bytes (lock-free; see DESIGN.md
    /// on why this — not process RSS — mirrors the paper's metric).
    pub fn heap_bytes(&self) -> usize {
        self.inner.counters.committed_pages.load(Ordering::Relaxed) * PAGE_SIZE
    }

    // ----- telemetry (mesh-insight) --------------------------------------

    /// The heap's occupancy spectrum: per-class span histograms over the
    /// §3.1 occupancy bins plus a meshability estimate — the paper's
    /// Figure-style spectra, computed online. Queued remote frees are
    /// drained first so occupancies are settled; each class's shard lock
    /// is taken one at a time, never across classes.
    pub fn occupancy_spectrum(&self) -> crate::telemetry::HeapSpectrum {
        with_internal_alloc(|| {
            self.inner.state.drain_all();
            self.inner.state.occupancy_spectrum()
        })
    }

    /// Renders the heap's state as Prometheus text-format metrics:
    /// counters, gauges, the per-class occupancy spectrum, and (when
    /// profiling) the sampler's summary. Scrape-ready.
    pub fn prom_text(&self) -> String {
        let stats = self.stats_with_spectrum();
        with_internal_alloc(|| {
            let prof = self.inner.state.telemetry.as_ref().map(|t| t.stats());
            let sense = self.inner.state.sense.as_ref().and_then(|s| s.latest());
            let rejects = self.inner.state.ledger.reject_totals();
            crate::telemetry::prom_text(&stats, prof.as_ref(), sense.as_ref(), &rejects)
        })
    }

    /// Whether the sampled heap profiler is active on this heap.
    pub fn is_profiling(&self) -> bool {
        self.inner.state.telemetry.is_some()
    }

    /// The profiler's self-summary, or `None` when profiling is off.
    pub fn profile_stats(&self) -> Option<crate::telemetry::ProfileStats> {
        self.inner.state.telemetry.as_ref().map(|t| t.stats())
    }

    /// The sampled heap profile as version-1 JSON (see DESIGN.md
    /// "Telemetry & profiling" for the schema), or `None` when profiling
    /// is off.
    pub fn profile_json(&self) -> Option<String> {
        with_internal_alloc(|| self.inner.state.profile_json())
    }

    /// The configured profile-dump destination (`MESH_PROF_PATH`), if
    /// profiling is on and a path was set.
    pub fn profile_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .state
            .telemetry
            .as_ref()
            .and_then(|t| t.dump_path().map(|p| p.to_path_buf()))
    }

    /// Requests an asynchronous profile dump from the background thread.
    /// Async-signal-safe (one atomic store): this is the body of the C
    /// ABI's `SIGUSR2` handler. No-op when profiling is off.
    pub fn request_profile_dump(&self) {
        if let Some(t) = &self.inner.state.telemetry {
            t.request_dump();
        }
    }

    /// Writes one profile dump synchronously to the configured
    /// destination (`MESH_PROF_PATH`, or stderr as a `mesh-prof: ` line).
    /// Returns whether profiling was on and a dump was written.
    pub fn dump_profile_now(&self) -> bool {
        with_internal_alloc(|| {
            let Some(t) = &self.inner.state.telemetry else {
                return false;
            };
            match self.inner.state.profile_json() {
                Some(json) => {
                    t.write_dump(&json);
                    true
                }
                None => false,
            }
        })
    }

    // ----- hardening (MESH_HARDEN) ---------------------------------------

    /// Whether hardened mode (`MESH_HARDEN`) is active on this heap.
    pub fn is_hardened(&self) -> bool {
        self.inner.state.harden.active()
    }

    /// Whether hardened mode is set to abort on violations (`MESH_HARDEN=abort`).
    pub fn harden_aborts(&self) -> bool {
        self.inner.state.harden.aborts()
    }

    // ----- sensing (mesh-sense) ------------------------------------------

    /// Whether the pressure/residency sensor (`MESH_SENSE_INTERVAL_MS`)
    /// is active on this heap.
    pub fn is_sensing(&self) -> bool {
        self.inner.state.sense.is_some()
    }

    /// The latest sensor snapshot, or `None` when sensing is off or no
    /// poll has completed yet. Lock-free (seqlock read).
    pub fn sense_latest(&self) -> Option<crate::telemetry::SenseSnapshot> {
        self.inner.state.sense.as_ref().and_then(|s| s.latest())
    }

    /// The sensor state — snapshot history, residency decomposition, and
    /// the meshing-effectiveness ledger — as version-1 JSON (see DESIGN.md
    /// §4f for the schema), or `None` when sensing is off. Takes one fresh
    /// poll first so the document is current.
    pub fn sense_json(&self) -> Option<String> {
        with_internal_alloc(|| {
            self.inner.state.sense.as_ref()?;
            self.inner.state.sense_poll();
            self.inner.state.sense_json()
        })
    }

    /// The meshing-effectiveness ledger's per-reason reject totals, in
    /// [`crate::telemetry::ALL_REJECT_REASONS`] order. Always available
    /// (the ledger records regardless of sensing).
    pub fn ledger_reject_totals(&self) -> [u64; crate::telemetry::REJECT_REASONS] {
        self.inner.state.ledger.reject_totals()
    }

    /// Ledger rows for the most recent mesh passes, oldest first.
    pub fn ledger_recent(&self) -> Vec<crate::telemetry::PassRecord> {
        with_internal_alloc(|| self.inner.state.ledger.recent())
    }

    /// The configured sense-dump destination (`MESH_SENSE_PATH`), if
    /// sensing is on and a path was set.
    pub fn sense_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .state
            .sense
            .as_ref()
            .and_then(|s| s.dump_path().map(|p| p.to_path_buf()))
    }

    /// Requests an asynchronous sense dump from the background thread.
    /// Async-signal-safe (one atomic store): the C ABI's `SIGUSR2`
    /// handler co-requests this alongside the profile and trace dumps.
    /// No-op when sensing is off.
    pub fn request_sense_dump(&self) {
        if let Some(s) = &self.inner.state.sense {
            s.request_dump();
        }
    }

    /// Writes one sense dump synchronously to the configured destination
    /// (`MESH_SENSE_PATH`, or stderr as a `mesh-sense: ` line). Returns
    /// whether sensing was on and a dump was written.
    pub fn dump_sense_now(&self) -> bool {
        with_internal_alloc(|| {
            let Some(s) = &self.inner.state.sense else {
                return false;
            };
            self.inner.state.sense_poll();
            match self.inner.state.sense_json() {
                Some(json) => {
                    s.write_dump(&json);
                    true
                }
                None => false,
            }
        })
    }

    // ----- tracing (mesh-trace) ------------------------------------------

    /// Whether slow-path event tracing (`MESH_TRACE=1`) is active.
    pub fn is_tracing(&self) -> bool {
        self.inner.counters.trace_set().is_some()
    }

    /// The buffered slow-path events as Chrome trace-event JSON (loadable
    /// in `chrome://tracing` / Perfetto), or `None` when tracing is off.
    /// Reads race benignly with recording threads: a torn event decodes
    /// as garbage-or-skipped, never as a malformed document.
    pub fn trace_json(&self) -> Option<String> {
        let trace = self.inner.counters.trace_set()?;
        let uptime_ms = self.inner.counters.uptime_ms();
        Some(with_internal_alloc(|| trace.chrome_json(uptime_ms)))
    }

    /// The configured trace-dump destination (`MESH_TRACE_PATH`), if
    /// tracing is on and a path was set.
    pub fn trace_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .counters
            .trace_set()
            .and_then(|t| t.dump_path().map(|p| p.to_path_buf()))
    }

    /// Requests an asynchronous trace dump from the background thread.
    /// Async-signal-safe (one atomic store): the C ABI's `SIGUSR2`
    /// handler co-requests this alongside the profile dump. No-op when
    /// tracing is off.
    pub fn request_trace_dump(&self) {
        if let Some(t) = self.inner.counters.trace_set() {
            t.request_dump();
        }
    }

    /// Writes one trace dump synchronously to the configured destination
    /// (`MESH_TRACE_PATH`, or stderr as a `mesh-trace: ` line). Returns
    /// whether tracing was on and a dump was written.
    pub fn dump_trace_now(&self) -> bool {
        let Some(t) = self.inner.counters.trace_set() else {
            return false;
        };
        let uptime_ms = self.inner.counters.uptime_ms();
        with_internal_alloc(|| {
            t.write_dump(&t.chrome_json(uptime_ms));
            true
        })
    }

    /// Runtime control analog of `mallctl` (§4.5): changes the meshing
    /// rate limit. Lock-free.
    pub fn set_mesh_period(&self, period: Duration) {
        self.inner.state.rt.set_mesh_period(period);
    }

    /// Runtime control analog of `mallctl` (§4.5): enables or disables
    /// meshing. Lock-free.
    pub fn set_meshing_enabled(&self, enabled: bool) {
        self.inner.state.rt.set_meshing(enabled);
    }

    /// Runtime control: adjusts the SplitMesher probe limit `t` (§3.3).
    /// Lock-free; zero is ignored.
    pub fn set_probe_limit(&self, t: usize) {
        self.inner.state.rt.set_probe_limit(t);
    }

    // ----- mesh-ctl (control socket) -------------------------------------

    /// The configured mesh-ctl socket path (`MESH_CTL`), whether or not
    /// the bind succeeded. `None` when no socket was configured.
    pub fn ctl_path(&self) -> Option<std::path::PathBuf> {
        self.inner.state.ctl.as_ref().map(|c| c.path().to_path_buf())
    }

    /// Whether the mesh-ctl socket is configured *and* listening (a bind
    /// can lose the path to a live owner; see the ctl module docs).
    pub fn ctl_active(&self) -> bool {
        self.inner
            .state
            .ctl
            .as_ref()
            .is_some_and(|c| c.is_listening())
    }

    /// Stops serving the control socket and unlinks its path. Idempotent;
    /// used by the C ABI's exit hook so interposed processes clean up
    /// even though the heap itself is never dropped.
    pub fn ctl_shutdown(&self) {
        if let Some(ctl) = &self.inner.state.ctl {
            with_internal_alloc(|| ctl.shutdown());
        }
    }

    /// The sampled live-heap profile as an uncompressed pprof protobuf
    /// (gzip-free; `go tool pprof` and speedscope both accept it), or
    /// `None` when profiling is off. See the `telemetry::pprof` module
    /// docs for how the Horvitz–Thompson estimates map onto pprof's
    /// `inuse_objects`/`inuse_space`.
    pub fn pprof_profile(&self) -> Option<Vec<u8>> {
        with_internal_alloc(|| self.inner.state.pprof_profile())
    }

    /// The page-release primitive the arena detected at startup.
    pub fn release_strategy(&self) -> ReleaseStrategy {
        self.inner.state.lock_arena().release_strategy()
    }

    /// Frees `ptr` through the global (lock-free) path without touching
    /// any thread-local heap state and without triggering inline meshing —
    /// the route an interposition layer takes for heap pointers freed from
    /// internal contexts, where a shard lock may already be held.
    ///
    /// # Safety
    ///
    /// Same contract as [`Mesh::free`].
    pub unsafe fn free_global(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        self.inner.state.free_global_deferred(ptr as usize);
    }

    // ----- fork protocol -------------------------------------------------

    /// Quiesces the heap for `fork()`: acquires *every* heap lock (main
    /// handle, each size-class shard, the large shard, the arena leaf, the
    /// scheduler leaves) so any in-flight refill, drain, or meshing pass
    /// completes first and the child cannot inherit a held lock. Also
    /// opens the pipe used to hold the parent until the child has
    /// privatized its heap copy.
    ///
    /// This is the *prepare* phase of the `pthread_atfork` protocol the
    /// `libmesh.so` interposition layer installs; after `fork()` the
    /// parent must call [`MeshForkGuard::release_parent`] and the child
    /// [`MeshForkGuard::release_child`] — see DESIGN.md "ABI & bootstrap".
    pub fn fork_prepare(&self) -> MeshForkGuard<'_> {
        with_internal_alloc(|| {
            let mut main = self.inner.main.lock();
            // Drain the main core's hardened-mode quarantine first: parked
            // frees complete through the normal path while every lock is
            // still free to take, so the child never inherits delayed
            // frees it would have to reconstruct.
            main.drain_quarantine(&self.inner.state);
            // Flush the main core's sender buffers while the heap is still
            // live: the child wipes the sender registry (other threads'
            // buffer locks may be inherited held), so anything left here
            // would be invisible to the child's stats until the next
            // buffered free re-registers the core.
            main.flush_remote(&self.inner.state);
            let all = self.inner.state.lock_all();
            let mut pipe = [-1, -1];
            // A pipe failure (fd exhaustion) degrades to not waiting: the
            // child still privatizes, the parent just races its copy.
            unsafe { crate::ffi::pipe(pipe.as_mut_ptr()) };
            MeshForkGuard {
                mesh: self,
                main,
                all,
                pipe,
            }
        })
    }

    /// Respawns the background thread in a forked child (the parent's
    /// thread does not exist there). No-op unless background meshing or
    /// telemetry wanted one.
    fn respawn_mesher_after_fork(&self) {
        if !self.inner.state.background_thread_wanted() {
            return;
        }
        let weak = Arc::downgrade(&self.inner);
        let mut slot = self.inner.mesher.lock();
        // Dropping the stale handle only flips a copied stop flag and
        // unparks a thread that does not exist in this process — harmless.
        *slot = Some(BackgroundMesher::spawn(weak));
    }

    /// Snapshots of every live MiniHeap's allocation state — the heap's
    /// span strings, for experiments cross-validating §5's theory against
    /// real allocator state.
    pub fn span_snapshots(&self) -> Vec<crate::stats::SpanSnapshot> {
        // Allocates the snapshot vector while holding shard locks; see
        // `mesh_now` for why the guard is required.
        with_internal_alloc(|| {
            self.inner.state.drain_all();
            self.inner.state.span_snapshots()
        })
    }
}

/// The heap's fork-quiescence state: every lock held, plus the pipe of
/// the parent↔child handshake. Created by [`Mesh::fork_prepare`]
/// immediately before `fork()`; consumed on exactly one side by
/// [`MeshForkGuard::release_parent`] or [`MeshForkGuard::release_child`]
/// (in an atfork world, on *both* sides — each process owns its copy).
///
/// The handshake exists because the arena's segments are `MAP_SHARED`
/// memory files: fork does **not** copy-on-write them, so the child must
/// re-back every segment with a private copy before either process writes
/// again. `release_child` performs that copy and then signals the pipe;
/// `release_parent` blocks on the pipe until the signal (or EOF if the
/// child died — or never existed, when `fork` itself failed), which is
/// what gives the child a faithful snapshot.
#[must_use = "fork preparation holds every heap lock until released"]
pub struct MeshForkGuard<'a> {
    mesh: &'a Mesh,
    main: MutexGuard<'a, ThreadHeapCore>,
    all: crate::global_heap::AllShardGuards<'a>,
    pipe: [crate::ffi::c_int; 2],
}

impl MeshForkGuard<'_> {
    /// Parent side (also the fork-failure side): waits for the child's
    /// privatization signal *while still holding every heap lock*, then
    /// releases them. The hold is what actually freezes the snapshot — if
    /// the locks dropped first, any other parent thread could mutate (or
    /// release pages of) the still-`MAP_SHARED` segments mid-copy. The
    /// child never contends with these locks: its copies of the futexes
    /// were released by [`MeshForkGuard::release_child`] in its own
    /// address space.
    pub fn release_parent(self) {
        use crate::ffi;
        with_internal_alloc(|| {
            let MeshForkGuard {
                mesh: _,
                main,
                all,
                pipe: [rd, wr],
            } = self;
            unsafe {
                if wr >= 0 {
                    // Close our write end first: if `fork` failed and no
                    // child exists, the read below sees immediate EOF.
                    ffi::close(wr);
                }
                if rd >= 0 {
                    let mut byte = 0u8;
                    loop {
                        let n = ffi::read(rd, &mut byte as *mut u8 as *mut ffi::c_void, 1);
                        if n >= 0 || ffi::errno() != ffi::EINTR {
                            break;
                        }
                    }
                    ffi::close(rd);
                }
            }
            drop(main);
            drop(all);
        })
    }

    /// Child side: releases every lock (their futex state was inherited
    /// held-by-us), re-backs all segments with private file copies,
    /// restores mesh aliases, respawns the background mesher if one was
    /// configured, and finally signals the waiting parent.
    pub fn release_child(self) {
        use crate::ffi;
        with_internal_alloc(|| {
            let MeshForkGuard {
                mesh,
                main,
                all,
                pipe: [rd, wr],
            } = self;
            unsafe {
                if rd >= 0 {
                    ffi::close(rd);
                }
            }
            drop(main);
            drop(all);
            // The child has exactly one thread: every other thread's
            // registered sender buffers are orphans whose leaf locks may
            // have been inherited held mid-steal, so they must never be
            // touched here. Wipe the registry; the epoch bump makes the
            // child's own cores re-register on their next buffered free.
            // (The main core's buffers were flushed in `fork_prepare`, so
            // nothing of the child's is stranded.)
            mesh.inner.state.clear_senders();
            mesh.inner.state.privatize_after_fork();
            // The child's latency history and trace buffers describe the
            // *parent's* threads: wipe both so its telemetry starts from
            // zero (and a pre-fork dump request cannot fire on parent
            // events). The rings were quiesced by `lock_all`, so no
            // orphaned writer can be mid-push here.
            mesh.inner.counters.zero_latency();
            if let Some(trace) = mesh.inner.counters.trace_set() {
                trace.wipe_all();
            }
            // Likewise the sense ring and meshing ledger: their history is
            // the parent's, and a pre-fork dump request must not fire here.
            if let Some(sense) = &mesh.inner.state.sense {
                sense.wipe_for_child();
            }
            mesh.inner.state.ledger.wipe_for_child();
            // The inherited listener and connections belong to the parent;
            // the child answers on the same path with a fresh listener
            // (see the ctl module docs on per-process paths).
            if let Some(ctl) = &mesh.inner.state.ctl {
                ctl.rebind_for_child();
            }
            mesh.inner.counters.forks.fetch_add(1, Ordering::Relaxed);
            mesh.respawn_mesher_after_fork();
            unsafe {
                if wr >= 0 {
                    let byte = 1u8;
                    let _ = ffi::write(wr, &byte as *const u8 as *const ffi::c_void, 1);
                    ffi::close(wr);
                }
            }
        })
    }
}

/// Rounds a request so the serving size class (or page-rounded large
/// object) guarantees `align`.
fn aligned_request(size: usize, align: usize) -> usize {
    if align <= 16 {
        return size;
    }
    if let Some(class) = SizeClass::for_size(size.max(1)) {
        // Find the smallest class that is both big enough and a multiple
        // of the requested alignment (object addresses are
        // `span_start + slot × class_size` with page-aligned span starts).
        for idx in class.index()..crate::size_classes::NUM_SIZE_CLASSES {
            let c = SizeClass::from_index(idx);
            if c.object_size() >= size && c.object_size().is_multiple_of(align) {
                return c.object_size();
            }
        }
    }
    // Fall through to a page-aligned large object.
    size.max(MAX_SMALL_SIZE + 1)
}

/// A per-thread allocation handle (§4.3). Create one per worker thread via
/// [`Mesh::thread_heap`]; malloc/free of thread-local objects take no lock.
///
/// # Examples
///
/// ```
/// use mesh_core::{Mesh, MeshConfig};
///
/// # fn main() -> Result<(), mesh_core::MeshError> {
/// let mesh = Mesh::new(MeshConfig::default().seed(3).arena_bytes(32 << 20))?;
/// let mut heap = mesh.thread_heap();
/// let p = heap.malloc(48);
/// unsafe { heap.free(p) };
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreadHeap {
    core: ThreadHeapCore,
    inner: Arc<MeshInner>,
}

impl ThreadHeap {
    /// Allocates `size` bytes (lock-free for small sizes with an attached
    /// span). Returns null on exhaustion.
    pub fn malloc(&mut self, size: usize) -> *mut u8 {
        with_internal_alloc(|| self.core.malloc(&self.inner.state, size))
    }

    /// Allocates `size` bytes with alignment `align` (any power of two):
    /// the per-thread analog of [`Mesh::malloc_aligned`], serving the
    /// `memalign` family of an interposition layer. Lock-free for small
    /// sizes with an attached span.
    pub fn malloc_aligned(&mut self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(align.is_power_of_two());
        if align > PAGE_SIZE {
            return with_internal_alloc(|| {
                match self.inner.state.malloc_large_aligned(size, align) {
                    Ok(addr) => addr as *mut u8,
                    Err(_) => std::ptr::null_mut(),
                }
            });
        }
        let request = aligned_request(size, align);
        self.malloc(request)
    }

    /// Frees `ptr` (lock-free when local; a lock-free queue push when
    /// not). Null is ignored.
    ///
    /// # Safety
    ///
    /// Same contract as [`Mesh::free`].
    pub unsafe fn free(&mut self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        with_internal_alloc(|| self.core.free(&self.inner.state, ptr));
    }

    /// The owning heap.
    pub fn mesh(&self) -> Mesh {
        Mesh {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The unique token identifying this thread heap.
    pub fn token(&self) -> u64 {
        self.core.token()
    }

    /// Flushes this thread's buffered remote frees (and batched local
    /// statistics) to the global heap, making them visible to
    /// [`Mesh::stats`] from other threads. Buffers also flush implicitly
    /// when they reach the transfer batch size and on drop.
    pub fn flush(&mut self) {
        with_internal_alloc(|| {
            self.core.flush_remote(&self.inner.state);
            self.core.flush_stats();
        });
    }

    /// Number of size classes with a currently attached span (diagnostic).
    pub fn attached_spans(&self) -> usize {
        self.core.attached_count()
    }
}

impl Drop for ThreadHeap {
    fn drop(&mut self) {
        with_internal_alloc(|| self.core.detach_all(&self.inner.state));
    }
}

// ---------------------------------------------------------------------
// GlobalAlloc adapter
// ---------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// `None` means heap construction failed; remembered so every subsequent
/// allocation fails cleanly (null) instead of retrying or panicking.
static GLOBAL_MESH: OnceLock<Option<Mesh>> = OnceLock::new();

thread_local! {
    /// Re-entrancy guard: allocations made *by* Mesh's own metadata
    /// structures are routed to the system allocator, mirroring the
    /// reference implementation's internal allocator. `const`-initialized
    /// and non-`Drop`, so reading it never allocates and never registers
    /// a TLS destructor (both would be fatal inside interposed symbols).
    static IN_MESH: Cell<bool> = const { Cell::new(false) };
    static TLS_HEAP: RefCell<Option<ThreadHeapCore>> = const { RefCell::new(None) };
}

static IN_MESH_FLAG: crate::sync::ReentrantFlag =
    crate::sync::ReentrantFlag::new(|| IN_MESH.with(|g| g.get()), |v| IN_MESH.with(|g| g.set(v)));

/// Marks the current thread as executing inside Mesh for the duration of
/// `f`: any allocation Mesh's own data structures make (candidate lists
/// during meshing, slab growth during refill, remote-free queue nodes) is
/// served by the *system* allocator instead of re-entering Mesh. Without
/// this, installing [`MeshGlobalAlloc`] as `#[global_allocator]` — or
/// interposing the C `malloc` family via `libmesh.so` — would
/// self-deadlock a shard lock on the first pass that allocates while
/// holding it; with a conventional global allocator the guard costs two
/// thread-local writes.
///
/// Public because an interposition layer must participate in the same
/// protocol: it wraps heap construction and every call into Mesh in this
/// guard, and routes any allocation arriving while
/// [`in_internal_alloc`] is true to the real (non-interposed) allocator.
pub fn with_internal_alloc<T>(f: impl FnOnce() -> T) -> T {
    IN_MESH_FLAG.with(f)
}

/// Whether the current thread is executing inside Mesh (under
/// [`with_internal_alloc`]). An interposed `malloc` that observes `true`
/// must *not* re-enter Mesh: the allocation belongs to Mesh's own
/// metadata and may be happening under a shard lock.
#[inline]
pub fn in_internal_alloc() -> bool {
    IN_MESH_FLAG.is_set()
}

/// A [`GlobalAlloc`] backed by a process-wide Mesh heap — the Rust analog
/// of `LD_PRELOAD=libmesh.so` (§4).
///
/// Internal metadata allocations recurse into the system allocator (the
/// role of the reference implementation's internal heap), so this adapter
/// is safe to install as `#[global_allocator]`:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mesh_core::MeshGlobalAlloc = mesh_core::MeshGlobalAlloc;
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct MeshGlobalAlloc;

impl MeshGlobalAlloc {
    /// The process-wide heap, created on first allocation. Exposed so
    /// programs can inspect stats or force meshing.
    ///
    /// # Panics
    ///
    /// Panics if the heap could not be constructed. The allocation paths
    /// never use this accessor — they go through [`Self::try_mesh`], which
    /// converts construction failure into null returns as the
    /// `GlobalAlloc` contract requires.
    pub fn mesh() -> &'static Mesh {
        Self::try_mesh().expect("failed to create global Mesh heap")
    }

    /// The process-wide heap, or `None` if construction failed (bad env
    /// configuration, no memfd/tmpfile support, reservation refused).
    /// Construction is attempted once; failure is sticky.
    pub fn try_mesh() -> Option<&'static Mesh> {
        GLOBAL_MESH
            .get_or_init(|| Mesh::new(MeshConfig::default().apply_env()).ok())
            .as_ref()
    }
}

unsafe impl GlobalAlloc for MeshGlobalAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let entered = IN_MESH.with(|f| {
            if f.get() {
                false
            } else {
                f.set(true);
                true
            }
        });
        if !entered {
            // Metadata allocation from inside Mesh itself.
            return System.alloc(layout);
        }
        let Some(mesh) = Self::try_mesh() else {
            // Heap construction failed: report OOM per the GlobalAlloc
            // contract instead of panicking across the boundary.
            IN_MESH.with(|f| f.set(false));
            return std::ptr::null_mut();
        };
        let p = if layout.align() > PAGE_SIZE {
            // Over-aligned layouts (e.g. a 2 MiB-aligned buffer) go to the
            // large path, which over-allocates and returns an aligned
            // interior pointer the page map still routes correctly.
            match mesh
                .inner
                .state
                .malloc_large_aligned(layout.size(), layout.align())
            {
                Ok(addr) => addr as *mut u8,
                Err(_) => std::ptr::null_mut(),
            }
        } else {
            let request = aligned_request(layout.size(), layout.align());
            TLS_HEAP.with(|slot| {
                let mut slot = slot.borrow_mut();
                let core = slot.get_or_insert_with(|| {
                    let token = mesh.inner.token_gen.fetch_add(1, Ordering::Relaxed);
                    // `batched: false` — these cores live in TLS for the
                    // process lifetime and are never detached, so buffered
                    // remote frees would strand invisibly.
                    ThreadHeapCore::new(
                        mesh.inner.seed_base.wrapping_add(token.wrapping_mul(0x9e37)),
                        mesh.inner.randomize,
                        token,
                        Arc::clone(&mesh.inner.counters),
                        mesh.inner.state.telemetry.clone(),
                        false,
                    )
                });
                core.malloc(&mesh.inner.state, request)
            })
        };
        IN_MESH.with(|f| f.set(false));
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let Some(mesh) = GLOBAL_MESH.get().and_then(|m| m.as_ref()) else {
            return System.dealloc(ptr, layout);
        };
        if !mesh.contains(ptr) {
            // Metadata allocation that went to the system allocator.
            return System.dealloc(ptr, layout);
        }
        let entered = IN_MESH.with(|f| {
            if f.get() {
                false
            } else {
                f.set(true);
                true
            }
        });
        if !entered {
            // A Mesh-owned pointer freed while servicing Mesh metadata —
            // cannot happen by construction (metadata never holds arena
            // pointers), but route globally for safety.
            mesh.inner.state.free_global(ptr as usize);
            return;
        }
        TLS_HEAP.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some(core) = slot.as_mut() {
                core.free(&mesh.inner.state, ptr);
            } else {
                mesh.inner.state.free_global(ptr as usize);
            }
        });
        IN_MESH.with(|f| f.set(false));
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.alloc(layout);
        if !p.is_null() {
            std::ptr::write_bytes(p, 0, layout.size());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(
            MeshConfig::default()
                .arena_bytes(64 << 20)
                .seed(42)
                .write_barrier(false),
        )
        .unwrap()
    }

    #[test]
    fn malloc_free_stats() {
        let m = mesh();
        let p = m.malloc(100);
        assert!(!p.is_null());
        assert!(m.contains(p));
        assert_eq!(m.usable_size(p), Some(112));
        unsafe { m.free(p) };
        let s = m.stats();
        assert_eq!(s.mallocs, 1);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn free_null_is_noop() {
        let m = mesh();
        unsafe { m.free(std::ptr::null_mut()) };
        assert_eq!(m.stats().frees, 0);
    }

    #[test]
    fn calloc_zeroes() {
        let m = mesh();
        let p = m.calloc(10, 100);
        assert!(!p.is_null());
        unsafe {
            for i in 0..1000 {
                assert_eq!(*p.add(i), 0);
            }
            m.free(p);
        }
        assert!(m.calloc(usize::MAX, 2).is_null(), "overflow rejected");
    }

    #[test]
    fn realloc_grows_and_preserves() {
        let m = mesh();
        unsafe {
            let p = m.realloc(std::ptr::null_mut(), 64);
            std::ptr::write_bytes(p, 0x7E, 64);
            let q = m.realloc(p, 100_000);
            assert!(!q.is_null());
            for i in 0..64 {
                assert_eq!(*q.add(i), 0x7E);
            }
            m.free(q);
        }
    }

    #[test]
    fn realloc_within_class_returns_same_pointer() {
        let m = mesh();
        unsafe {
            let p = m.realloc(std::ptr::null_mut(), 120);
            let q = m.realloc(p, 128); // both in the 128 class
            assert_eq!(p, q);
            assert_eq!(m.stats().reallocs_in_place, 1);
            m.free(q);
        }
    }

    #[test]
    fn realloc_in_place_small_and_large() {
        let m = mesh();
        unsafe {
            // Small: any size mapping to the same class stays put…
            let p = m.malloc(100); // 112 class
            assert!(m.realloc_in_place(p, 112));
            assert!(m.realloc_in_place(p, 97));
            // …crossing a class boundary moves (either direction).
            assert!(!m.realloc_in_place(p, 113));
            assert!(!m.realloc_in_place(p, 96));
            let q = m.realloc(p, 200);
            assert_ne!(p, q);
            m.free(q);

            // Large: growth into the span tail and moderate shrinks stay.
            let big = m.malloc(100_000); // 25 pages → 102400 usable
            std::ptr::write_bytes(big, 0x11, 100_000);
            let usable = m.usable_size(big).unwrap();
            assert_eq!(m.realloc(big, usable), big, "grow into tail");
            assert_eq!(m.realloc(big, usable / 2), big, "half-span shrink");
            let moved = m.realloc(big, 1000);
            assert_ne!(moved, big, "deep shrink must release the span");
            assert_eq!(*moved, 0x11, "contents preserved across the move");
            m.free(moved);

            // Foreign pointers never claim in-place.
            assert!(!m.realloc_in_place(0x1000 as *mut u8, 8));
        }
        let s = m.stats();
        assert_eq!(s.reallocs_in_place, 4);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn aligned_allocations() {
        let m = mesh();
        for align in [16usize, 32, 64, 128, 256, 1024, 4096] {
            for size in [1usize, 17, 100, 1000, 5000] {
                let p = m.malloc_aligned(size, align);
                assert!(!p.is_null(), "align {align} size {size}");
                assert_eq!(p as usize % align, 0, "align {align} size {size}");
                assert!(m.usable_size(p).unwrap() >= size);
                unsafe { m.free(p) };
            }
        }
    }

    #[test]
    fn over_page_alignment_served_on_large_path() {
        // A 2 MiB-aligned allocation used to spuriously OOM; it must now
        // over-allocate on the large path and stay fully usable.
        let m = mesh();
        for align in [8192usize, 1 << 16, 2 << 20] {
            for size in [64usize, 5000, 100_000] {
                let p = m.malloc_aligned(size, align);
                assert!(!p.is_null(), "align {align} size {size}");
                assert_eq!(p as usize % align, 0, "align {align} size {size}");
                assert!(m.usable_size(p).unwrap() >= size, "align {align} size {size}");
                unsafe {
                    std::ptr::write_bytes(p, 0x5C, size);
                    m.free(p);
                }
            }
        }
        let s = m.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.invalid_frees, 0);
        assert_eq!(s.double_frees, 0);
    }

    #[test]
    fn thread_heap_aligned_allocations() {
        let m = mesh();
        let mut h = m.thread_heap();
        for align in [16usize, 512, 4096, 1 << 21] {
            let p = h.malloc_aligned(300, align);
            assert!(!p.is_null(), "align {align}");
            assert_eq!(p as usize % align, 0, "align {align}");
            unsafe { h.free(p) };
        }
        assert_eq!(m.stats().live_bytes, 0);
    }

    #[test]
    fn mesh_is_send_sync_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Mesh>();
        fn assert_send<T: Send>() {}
        assert_send::<ThreadHeap>();
    }

    #[test]
    fn thread_heaps_across_threads() {
        let m = mesh();
        let mut handles = vec![];
        for _ in 0..4 {
            let mesh = m.clone();
            handles.push(std::thread::spawn(move || {
                let mut h = mesh.thread_heap();
                let mut ptrs = vec![];
                for i in 0..1000 {
                    let p = h.malloc(16 + (i % 10) * 50);
                    assert!(!p.is_null());
                    ptrs.push(p as usize);
                }
                for p in ptrs {
                    unsafe { h.free(p as *mut u8) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = m.stats();
        assert_eq!(s.mallocs, 4000);
        assert_eq!(s.frees, 4000);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn cross_thread_free_through_mesh_handle() {
        let m = mesh();
        let mut h = m.thread_heap();
        let p = h.malloc(200) as usize;
        let m2 = m.clone();
        std::thread::spawn(move || unsafe { m2.free(p as *mut u8) })
            .join()
            .unwrap();
        assert_eq!(m.stats().remote_frees, 1);
    }

    #[test]
    fn runtime_controls() {
        let m = mesh();
        m.set_mesh_period(Duration::from_millis(1));
        m.set_meshing_enabled(false);
        m.set_probe_limit(16);
        m.set_probe_limit(0); // ignored
        assert_eq!(m.inner.state.rt.probe_limit(), 16);
        assert!(!m.inner.state.rt.meshing());
        assert_eq!(
            m.inner.state.rt.mesh_period(),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn fork_guard_child_privatizes_in_process() {
        // Exercise the child path without an actual fork(): privatization
        // must preserve every live byte and leave the heap fully usable.
        let m = mesh();
        let p = m.malloc(1000);
        let big = m.malloc(100_000);
        unsafe {
            std::ptr::write_bytes(p, 0x42, 1000);
            std::ptr::write_bytes(big, 0x24, 100_000);
        }
        let mapped_before = m.mapped_bytes();
        m.fork_prepare().release_child();
        unsafe {
            for i in 0..1000 {
                assert_eq!(*p.add(i), 0x42, "small object survived privatization");
            }
            assert_eq!(*big, 0x24);
            assert_eq!(*big.add(99_999), 0x24, "large object survived privatization");
        }
        assert_eq!(m.mapped_bytes(), mapped_before, "same segments, new files");
        let q = m.malloc(500);
        assert!(!q.is_null(), "heap usable after privatization");
        unsafe {
            m.free(q);
            m.free(p);
            m.free(big);
        }
        let s = m.stats();
        assert_eq!(s.forks, 1);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn fork_guard_child_restores_meshed_aliases() {
        // Meshed spans have non-identity mappings; privatization must
        // rebuild them against the new segment files.
        let m = mesh();
        let ptrs: Vec<*mut u8> = (0..4096).map(|_| m.malloc(128)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 != 0 {
                unsafe { m.free(p) };
            }
        }
        let survivors: Vec<*mut u8> = ptrs.iter().copied().step_by(8).collect();
        for (i, &p) in survivors.iter().enumerate() {
            unsafe { std::ptr::write_bytes(p, (i % 251) as u8, 128) };
        }
        let summary = m.mesh_now();
        m.fork_prepare().release_child();
        for (i, &p) in survivors.iter().enumerate() {
            unsafe {
                assert_eq!(*p, (i % 251) as u8, "survivor {i} lost after fork privatization");
                assert_eq!(*p.add(127), (i % 251) as u8);
                m.free(p);
            }
        }
        // The interesting case needs actual meshes; the seeded config
        // reliably produces some, so make silent regressions loud.
        assert!(summary.pairs_meshed > 0, "test exercised no aliases");
        assert_eq!(m.stats().live_bytes, 0);
    }

    #[test]
    fn fork_prepare_quiesces_stats_registry() {
        // The per-thread stats registry is a heap lock like any other: a
        // child forked while some thread is mid-register/unregister must
        // not inherit it held, so fork_prepare takes it too.
        let m = mesh();
        let guard = m.fork_prepare();
        assert!(
            m.inner.counters.locals_contended(),
            "fork quiescence must hold the stats registry lock"
        );
        guard.release_parent();
        assert!(!m.inner.counters.locals_contended());
        // Registration (thread-heap creation) works again after release.
        let mut th = m.thread_heap();
        let p = th.malloc(64);
        assert!(!p.is_null());
        unsafe { th.free(p) };
    }

    #[test]
    fn fork_guard_parent_release_is_nonblocking_without_child() {
        // With no child holding the pipe's write end, release_parent must
        // see EOF immediately (the fork-failed path) and not deadlock.
        let m = mesh();
        m.fork_prepare().release_parent();
        let p = m.malloc(64);
        assert!(!p.is_null());
        unsafe { m.free(p) };
        assert_eq!(m.stats().forks, 0, "parent side does not privatize");
    }

    fn traced_mesh() -> Mesh {
        Mesh::new(
            MeshConfig::default()
                .arena_bytes(64 << 20)
                .seed(7)
                .write_barrier(false)
                .background_meshing(false)
                .tracing(true)
                .trace_buf_events(1 << 10),
        )
        .unwrap()
    }

    #[test]
    fn trace_api_records_and_renders_chrome_json() {
        let m = traced_mesh();
        assert!(m.is_tracing());
        assert!(m.trace_path().is_none());
        let ptrs: Vec<*mut u8> = (0..2000).map(|_| m.malloc(256)).collect();
        for p in &ptrs {
            assert!(!p.is_null());
        }
        for p in ptrs {
            unsafe { m.free(p) };
        }
        m.mesh_now();
        let json = m.trace_json().unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "got: {}", &json[..40.min(json.len())]);
        assert!(json.contains("\"mesh_trace_version\":1"));
        assert!(json.contains("\"name\":\"refill\""), "refills traced");
        assert!(json.contains("\"name\":\"mesh_pass\""), "mesh pass traced");
        assert!(m.dump_trace_now(), "dump to stderr succeeds");
        // Histograms saw the same ops.
        let s = m.stats();
        assert!(s.latency.count(crate::telemetry::TimedOp::Refill) > 0);
        assert!(s.latency.count(crate::telemetry::TimedOp::MeshPass) > 0);
    }

    #[test]
    fn untraced_heap_has_no_trace_state() {
        let m = mesh();
        assert!(!m.is_tracing());
        assert!(m.trace_json().is_none());
        assert!(m.trace_path().is_none());
        assert!(!m.dump_trace_now());
        m.request_trace_dump(); // no-op, must not panic
    }

    #[test]
    fn fork_child_wipes_trace_rings_and_latency() {
        let m = traced_mesh();
        let ptrs: Vec<*mut u8> = (0..2000).map(|_| m.malloc(512)).collect();
        for p in ptrs {
            unsafe { m.free(p) };
        }
        let trace = Arc::clone(m.inner.counters.trace_set().unwrap());
        assert!(trace.event_count() > 0, "parent recorded events");
        assert!(
            m.inner.counters.latency_snapshot().count(crate::telemetry::TimedOp::Refill) > 0,
            "parent recorded refill latencies"
        );
        m.fork_prepare().release_child();
        // Refill only fires from mutator threads, so no background thread
        // can race these zeros back up.
        assert_eq!(
            m.inner.counters.latency_snapshot().count(crate::telemetry::TimedOp::Refill),
            0,
            "child's latency history starts empty"
        );
        let json = m.trace_json().unwrap();
        assert!(
            !json.contains("\"name\":\"refill\""),
            "child inherited no parent refill events"
        );
        // The child heap keeps tracing.
        let p = m.malloc(64);
        assert!(!p.is_null());
        unsafe { m.free(p) };
    }

    #[test]
    fn aligned_request_picks_multiple_classes() {
        assert_eq!(aligned_request(100, 16), 100);
        assert_eq!(aligned_request(100, 32), 128);
        assert_eq!(aligned_request(100, 64), 128);
        assert_eq!(aligned_request(130, 128), 256);
        assert_eq!(aligned_request(1000, 1024), 1024);
        // 16K with page alignment is fine (16384 % 4096 == 0).
        assert_eq!(aligned_request(16384, 4096), 16384);
        // Unsatisfiable in-class → large object.
        assert!(aligned_request(900, 4096) >= 4096);
    }
}
