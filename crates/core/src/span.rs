//! Spans: runs of contiguous 4 KiB pages inside the arena (§2.1).
//!
//! A span is identified by its page offset from the arena start plus its
//! length in pages. Because the arena is a single file mapping, a span's
//! page offset doubles as its *file* offset — the identity that meshing
//! perturbs (a virtual span can be remapped to another span's file range)
//! and that dying meshed spans are restored to.

use crate::size_classes::PAGE_SIZE;

/// A contiguous page range inside the arena.
///
/// # Examples
///
/// ```
/// use mesh_core::span::Span;
///
/// let s = Span::new(4, 2);
/// assert_eq!(s.byte_offset(), 4 * 4096);
/// assert_eq!(s.byte_len(), 2 * 4096);
/// assert!(s.contains_page(5));
/// assert!(!s.contains_page(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// First page of the span (index from the arena start).
    pub offset: u32,
    /// Length in pages.
    pub pages: u32,
}

impl Span {
    /// Creates a span at page `offset` covering `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    #[inline]
    pub fn new(offset: u32, pages: u32) -> Self {
        assert!(pages > 0, "span must cover at least one page");
        Span { offset, pages }
    }

    /// Byte offset of the span start from the arena base (also its file
    /// offset in the arena's backing memory file).
    #[inline]
    pub fn byte_offset(self) -> usize {
        self.offset as usize * PAGE_SIZE
    }

    /// Span length in bytes.
    #[inline]
    pub fn byte_len(self) -> usize {
        self.pages as usize * PAGE_SIZE
    }

    /// One-past-the-end page index.
    #[inline]
    pub fn end(self) -> u32 {
        self.offset + self.pages
    }

    /// Whether `page` lies inside this span.
    #[inline]
    pub fn contains_page(self, page: u32) -> bool {
        page >= self.offset && page < self.end()
    }

    /// Iterator over the page indices covered by this span.
    pub fn iter_pages(self) -> impl Iterator<Item = u32> {
        self.offset..self.end()
    }

    /// Splits off the first `pages` pages, returning `(head, tail)`;
    /// `tail` is `None` when the span is consumed exactly.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero or exceeds the span length.
    pub fn split(self, pages: u32) -> (Span, Option<Span>) {
        assert!(pages > 0 && pages <= self.pages, "bad split of {self:?} at {pages}");
        let head = Span::new(self.offset, pages);
        let tail = if pages == self.pages {
            None
        } else {
            Some(Span::new(self.offset + pages, self.pages - pages))
        };
        (head, tail)
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span[{}..{})", self.offset, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let s = Span::new(10, 4);
        assert_eq!(s.end(), 14);
        assert_eq!(s.byte_offset(), 40960);
        assert_eq!(s.byte_len(), 16384);
        assert_eq!(s.iter_pages().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn contains_boundaries() {
        let s = Span::new(2, 2);
        assert!(!s.contains_page(1));
        assert!(s.contains_page(2));
        assert!(s.contains_page(3));
        assert!(!s.contains_page(4));
    }

    #[test]
    fn split_exact_and_partial() {
        let s = Span::new(0, 8);
        let (head, tail) = s.split(3);
        assert_eq!(head, Span::new(0, 3));
        assert_eq!(tail, Some(Span::new(3, 5)));
        let (head, tail) = s.split(8);
        assert_eq!(head, s);
        assert!(tail.is_none());
    }

    #[test]
    #[should_panic(expected = "bad split")]
    fn oversplit_panics() {
        Span::new(0, 2).split(3);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_span_panics() {
        Span::new(0, 0);
    }
}
