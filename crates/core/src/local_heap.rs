//! Thread-local heaps (§4.3): the lock-free malloc/free fast path.
//!
//! Every thread owns one shuffle vector per size class plus a private PRNG.
//! Small allocations pop from the class's vector with no locks or atomics;
//! refills take only the *owning class's* shard lock, large objects take
//! the large + arena locks, and non-local frees push onto a lock-free
//! remote-free queue without taking any lock at all (see DESIGN.md's
//! sharded locking discipline).

use crate::global_heap::GlobalHeap;
use crate::rng::Rng;
use crate::shuffle_vector::ShuffleVector;
use crate::size_classes::{SizeClass, NUM_SIZE_CLASSES};
use crate::stats::Counters;
use std::sync::atomic::Ordering;

/// Per-thread allocation state: one shuffle vector per size class and a
/// thread-private PRNG (§4.3).
#[derive(Debug)]
pub(crate) struct ThreadHeapCore {
    vectors: Vec<ShuffleVector>,
    rng: Rng,
    token: u64,
}

impl ThreadHeapCore {
    /// Creates a detached thread heap with identity `token`.
    pub fn new(seed: u64, randomize: bool, token: u64) -> Self {
        ThreadHeapCore {
            vectors: (0..NUM_SIZE_CLASSES)
                .map(|_| ShuffleVector::new(randomize))
                .collect(),
            rng: Rng::with_seed(seed),
            token,
        }
    }

    /// The thread token identifying this heap in `AttachState::Attached`.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Allocates `size` bytes (Fig 4, `MeshLocal::malloc`): the size
    /// class's shuffle vector in the common case, the class shard for
    /// refills, the global large path otherwise. Returns null on arena
    /// exhaustion.
    pub fn malloc(&mut self, state: &GlobalHeap, counters: &Counters, size: usize) -> *mut u8 {
        let Some(class) = SizeClass::for_size(size) else {
            // Large object: forwarded to the global heap (§4.4.3).
            return match state.malloc_large(size) {
                Ok(addr) => addr as *mut u8,
                Err(_) => std::ptr::null_mut(),
            };
        };
        let idx = class.index();
        loop {
            if let Some(addr) = self.vectors[idx].malloc() {
                counters.mallocs.fetch_add(1, Ordering::Relaxed);
                counters
                    .live_bytes
                    .fetch_add(class.object_size(), Ordering::Relaxed);
                return addr as *mut u8;
            }
            if state
                .refill(&mut self.vectors[idx], class, self.token, &mut self.rng)
                .is_err()
            {
                return std::ptr::null_mut();
            }
        }
    }

    /// Frees `ptr` (Fig 4, `MeshLocal::free`): handled by the owning
    /// shuffle vector when the object is local, else enqueued on the
    /// owning class's remote-free queue (lock-free, §4.4.4).
    ///
    /// # Safety
    ///
    /// `ptr` must be a pointer previously returned by this heap family's
    /// malloc and not already freed (foreign/duplicate pointers on the
    /// *global* path are detected and discarded; on the local fast path
    /// they are undefined behaviour exactly as in C).
    pub unsafe fn free(&mut self, state: &GlobalHeap, counters: &Counters, ptr: *mut u8) {
        let addr = ptr as usize;
        for sv in &mut self.vectors {
            if sv.miniheap().is_some() && sv.contains(addr) {
                let object_size = sv.object_size();
                sv.free(addr, &mut self.rng);
                counters.frees.fetch_add(1, Ordering::Relaxed);
                counters.live_bytes.fetch_sub(object_size, Ordering::Relaxed);
                return;
            }
        }
        state.free_global(addr);
    }

    /// Returns every attached MiniHeap to its class shard (thread exit).
    pub fn detach_all(&mut self, state: &GlobalHeap) {
        for (idx, sv) in self.vectors.iter_mut().enumerate() {
            if sv.miniheap().is_some() {
                state.release_vector(SizeClass::from_index(idx), sv);
            }
        }
    }

    /// Number of classes with a currently attached MiniHeap (diagnostic).
    pub fn attached_count(&self) -> usize {
        self.vectors.iter().filter(|v| v.miniheap().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeshConfig;
    use std::sync::Arc;

    fn setup() -> (GlobalHeap, Arc<Counters>) {
        let counters = Arc::new(Counters::default());
        let st = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(32 << 20)
                .seed(11)
                .write_barrier(false),
            Arc::clone(&counters),
        )
        .unwrap();
        (st, counters)
    }

    #[test]
    fn malloc_free_roundtrip_small() {
        let (state, counters) = setup();
        let mut heap = ThreadHeapCore::new(1, true, 1);
        let p = heap.malloc(&state, &counters, 100);
        assert!(!p.is_null());
        unsafe {
            std::ptr::write_bytes(p, 0x5A, 100);
            heap.free(&state, &counters, p);
        }
        let s = counters.snapshot();
        assert_eq!(s.mallocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn local_free_does_not_touch_global_path() {
        let (state, counters) = setup();
        let mut heap = ThreadHeapCore::new(2, true, 1);
        let p = heap.malloc(&state, &counters, 64);
        unsafe { heap.free(&state, &counters, p) };
        state.drain_all();
        let s = counters.snapshot();
        assert_eq!(s.remote_frees, 0, "free stayed local");
        assert_eq!(s.remote_free_queued, 0, "free never touched a queue");
    }

    #[test]
    fn large_allocation_via_global() {
        let (state, counters) = setup();
        let mut heap = ThreadHeapCore::new(3, true, 1);
        let p = heap.malloc(&state, &counters, 64 * 1024);
        assert!(!p.is_null());
        assert_eq!(p as usize % 4096, 0, "large objects are page-aligned");
        assert_eq!(counters.snapshot().large_allocs, 1);
        unsafe { heap.free(&state, &counters, p) };
        assert_eq!(counters.snapshot().remote_frees, 1);
    }

    #[test]
    fn exhausted_vector_refills_transparently() {
        let (state, counters) = setup();
        let mut heap = ThreadHeapCore::new(4, true, 1);
        let class = SizeClass::for_size(512).unwrap();
        let per_span = class.object_count();
        let mut ptrs = vec![];
        for _ in 0..per_span * 3 {
            let p = heap.malloc(&state, &counters, 512);
            assert!(!p.is_null());
            ptrs.push(p);
        }
        // Three spans' worth allocated; all addresses distinct.
        let set: std::collections::HashSet<_> = ptrs.iter().collect();
        assert_eq!(set.len(), ptrs.len());
        assert!(counters.snapshot().refills >= 3);
        for p in ptrs {
            unsafe { heap.free(&state, &counters, p) };
        }
    }

    #[test]
    fn cross_thread_free_goes_through_queue() {
        let (state, counters) = setup();
        let mut a = ThreadHeapCore::new(5, true, 1);
        let mut b = ThreadHeapCore::new(6, true, 2);
        let p = a.malloc(&state, &counters, 256);
        // Thread B frees A's pointer: must take the queued global path.
        unsafe { b.free(&state, &counters, p) };
        assert_eq!(counters.snapshot().remote_free_queued, 1);
        state.drain_all();
        let s = counters.snapshot();
        assert_eq!(s.remote_frees, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.remote_free_drained, 1);
    }

    #[test]
    fn detach_all_returns_everything() {
        let (state, counters) = setup();
        let mut heap = ThreadHeapCore::new(7, true, 1);
        let p1 = heap.malloc(&state, &counters, 32);
        let p2 = heap.malloc(&state, &counters, 4000);
        assert!(heap.attached_count() >= 2);
        heap.detach_all(&state);
        assert_eq!(heap.attached_count(), 0);
        // Frees after detach go through the global heap and still work.
        unsafe {
            heap.free(&state, &counters, p1);
            heap.free(&state, &counters, p2);
        }
        state.drain_all();
        assert_eq!(counters.snapshot().remote_frees, 2);
        assert_eq!(counters.snapshot().live_bytes, 0);
    }

    #[test]
    fn null_on_arena_exhaustion() {
        let counters = Arc::new(Counters::default());
        let st = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(32 * 4096)
                .seed(1)
                .write_barrier(false),
            Arc::clone(&counters),
        )
        .unwrap();
        let mut heap = ThreadHeapCore::new(8, true, 1);
        let mut got_null = false;
        for _ in 0..100_000 {
            if heap.malloc(&st, &counters, 16384).is_null() {
                got_null = true;
                break;
            }
        }
        assert!(got_null, "exhaustion must surface as null");
    }
}
