//! Thread-local heaps (§4.3): the lock-free malloc/free fast path.
//!
//! Every thread owns one shuffle vector per size class plus a private PRNG.
//! Small allocations pop from the class's vector with no locks or atomics;
//! refills take only the *owning class's* shard lock, large objects take
//! the large + arena locks, and non-local frees push onto a lock-free
//! remote-free queue without taking any lock at all (see DESIGN.md's
//! sharded locking discipline and "Fast path anatomy").
//!
//! Both hot paths are O(1) and free of shared-cacheline traffic:
//!
//! * **malloc** pops the class's shuffle vector and bumps a per-thread
//!   [`LocalCounters`] block (plain load+store, no RMW — deltas are
//!   summed into [`crate::HeapStats`] at snapshot time).
//! * **free** resolves the pointer with *one* lock-free [`PageMap`]
//!   lookup, which yields the owning MiniHeap id, size class, and slot in
//!   one read. Comparing the id against the attached vector's decides
//!   local vs remote; the decoded entry is passed down to the global heap
//!   so nothing is re-derived. (The previous design scanned every class's
//!   attached span per free — O(classes), and O(aliases) after meshing.)
//!
//! The page-map route also makes the local path *checkable*: slot-range,
//! alignment, and double-free validation that used to exist only on the
//! drain side now run before the shuffle vector is touched, so a hostile
//! free is counted and discarded instead of corrupting the freelist.

use crate::global_heap::GlobalHeap;
use crate::harden::HardenKind;
use crate::page_map::PageInfo;
use crate::remote_free::SenderBufs;
use crate::rng::Rng;
use crate::shuffle_vector::ShuffleVector;
use crate::size_classes::{SizeClass, NUM_SIZE_CLASSES};
use crate::stats::{Counters, LocalCounters};
use crate::telemetry::{trace_tid, LocalHists, Telemetry, ThreadSampler, TimedOp, TraceRing};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Where one free request is routed, as decided by a single page-map
/// lookup (see [`ThreadHeapCore::route`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FreeRoute {
    /// The pointer belongs to the span attached to this thread's vector
    /// for `class_idx`: freed in place, no lock, no atomics.
    Local { class_idx: usize, slot: usize },
    /// The page belongs to this thread's attached span, but the address
    /// is not a valid object: span tail waste or a misaligned interior
    /// pointer. Counted and discarded.
    LocalInvalid,
    /// Owned by some other MiniHeap (detached, another thread's, or a
    /// large object): handed to the global heap along with the decoded
    /// entry.
    Global { page: u32, info: PageInfo },
    /// Not an arena pointer, or an unowned (stale/retired/wild) page.
    Unowned,
}

/// Per-thread allocation state: one shuffle vector per size class, a
/// thread-private PRNG (§4.3), and a private statistics delta block.
#[derive(Debug)]
pub(crate) struct ThreadHeapCore {
    vectors: Vec<ShuffleVector>,
    rng: Rng,
    token: u64,
    /// Fast-path counter deltas (single-writer; see [`LocalCounters`]).
    local: Arc<LocalCounters>,
    /// Per-thread latency histogram block (single-writer, like `local`):
    /// the refill and transfer-flush timings land here without RMWs.
    hists: Arc<LocalHists>,
    /// Per-thread trace-event ring, present only under `MESH_TRACE=1`.
    /// Registered with the heap's [`crate::telemetry::TraceSet`]; the set
    /// keeps the ring alive after thread exit so its tail stays dumpable.
    ring: Option<Arc<TraceRing>>,
    /// The shared block `local` is registered with, kept for flush points
    /// and teardown.
    counters: Arc<Counters>,
    /// Geometric byte-sampling state (`None` when `MESH_PROF` is off: the
    /// fast path then pays exactly one branch on this field).
    sampler: Option<Box<ThreadSampler>>,
    /// Per-class sender-side buffers of small remote frees, flushed as one
    /// queue node per `transfer.batch()` frees (empty when `!batched`).
    /// Shared (via the global heap's sender registry) so stats snapshots
    /// and the exhaustion fallback can flush them from any thread.
    remote_bufs: Arc<SenderBufs>,
    /// Registry epoch at which `remote_bufs` was last registered; 0 means
    /// never. The forked child bumps the heap's epoch after clearing its
    /// registry, which makes every surviving core re-register lazily.
    sender_epoch: u64,
    /// Per-class remainder of a transfer-cache batch popped for refills:
    /// claimed addresses this thread hands out before touching any lock.
    cache: Vec<Vec<usize>>,
    /// Whether this core participates in batched exchange. False for
    /// cores that are never detached (the `GlobalAlloc` TLS heaps), whose
    /// buffers could otherwise strand objects forever.
    batched: bool,
    /// Delayed-reuse quarantine (hardened mode, `MESH_HARDEN` with
    /// quarantine on): locally freed objects are parked here — poisoned,
    /// their slots still claimed — instead of becoming immediately
    /// reusable. Eviction order is randomized by the thread PRNG; evicted
    /// objects have their poison verified (a dangling write while parked
    /// trips it) and then take the normal free path. Empty when hardening
    /// is off.
    quarantine: Vec<(usize, usize)>,
    /// Membership index over `quarantine` addresses: a second free of a
    /// parked pointer is a deterministic double free, caught before any
    /// routing.
    quarantine_set: std::collections::HashSet<usize>,
    /// Total object bytes currently parked (bounded by
    /// `MESH_HARDEN_QUARANTINE_BYTES`).
    quarantine_bytes: usize,
}

impl ThreadHeapCore {
    /// Creates a detached thread heap with identity `token`, registering
    /// its statistics delta block with `counters` and — when profiling is
    /// on — a private sampler feeding `telemetry`. `batched` opts into
    /// the transfer-cache exchange; pass false for cores with no teardown
    /// path to flush their buffers.
    pub fn new(
        seed: u64,
        randomize: bool,
        token: u64,
        counters: Arc<Counters>,
        telemetry: Option<Arc<Telemetry>>,
        batched: bool,
    ) -> Self {
        ThreadHeapCore {
            vectors: (0..NUM_SIZE_CLASSES)
                .map(|_| ShuffleVector::new(randomize))
                .collect(),
            rng: Rng::with_seed(seed),
            token,
            local: counters.register_local(),
            hists: counters.register_local_hists(),
            ring: counters.trace_set().map(|t| t.register_ring()),
            counters,
            sampler: telemetry.map(|t| Box::new(ThreadSampler::new(t, seed))),
            remote_bufs: Arc::new(SenderBufs::new()),
            sender_epoch: 0,
            cache: (0..NUM_SIZE_CLASSES).map(|_| Vec::new()).collect(),
            batched,
            quarantine: Vec::new(),
            quarantine_set: std::collections::HashSet::new(),
            quarantine_bytes: 0,
        }
    }

    /// The thread token identifying this heap in `AttachState::Attached`.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Records a completed slow-path operation that started at `t0` into
    /// this thread's histogram block and — when tracing — its event ring.
    /// Single-writer by construction: only the owning thread calls this.
    fn record_op(&self, op: TimedOp, t0: Instant, arg: u64) {
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.hists.record(op, dur_ns);
        if let Some(ring) = &self.ring {
            if self.counters.trace_set().is_some_and(|t| t.is_enabled()) {
                let start_ns = t0
                    .saturating_duration_since(self.counters.epoch())
                    .as_nanos() as u64;
                ring.push(op, trace_tid(), start_ns, dur_ns, arg);
            }
        }
    }

    /// Allocates `size` bytes (Fig 4, `MeshLocal::malloc`): the size
    /// class's shuffle vector in the common case, the class shard for
    /// refills, the global large path otherwise. Returns null on arena
    /// exhaustion.
    pub fn malloc(&mut self, state: &GlobalHeap, size: usize) -> *mut u8 {
        let Some(class) = SizeClass::for_size(size) else {
            // Large object: forwarded to the global heap (§4.4.3).
            return match state.malloc_large(size) {
                Ok(addr) => addr as *mut u8,
                Err(_) => std::ptr::null_mut(),
            };
        };
        let idx = class.index();
        // Memory-pressure escalation (see the refill-failure arm below):
        // 0 = normal, 1 = after flushing our own buffered remote frees,
        // 2 = after purging the shared transfer cache.
        let mut pressure = 0u8;
        loop {
            if let Some(addr) = self.vectors[idx].malloc() {
                // Hardened mode: the slot held poison since it was freed
                // (or since its span came fresh from the arena); a write
                // that landed in it while free is a caught use-after-free.
                state.verify_poison(addr, class.object_size(), idx);
                self.local.on_malloc(class.object_size());
                if let Some(s) = self.sampler.as_deref_mut() {
                    s.on_alloc(addr, class.object_size());
                }
                return addr as *mut u8;
            }
            // Vector exhausted: serve from the thread's popped batch, or
            // pop a fresh transfer-cache batch — both without the class
            // lock — before paying for a shard refill.
            if self.batched {
                if self.cache[idx].is_empty() && state.transfer.cache_enabled() {
                    match state.transfer.pop(idx) {
                        Some(batch) => {
                            state.counters.transfer_hits.fetch_add(1, Ordering::Relaxed);
                            self.cache[idx] = batch;
                        }
                        None => {
                            state.counters.transfer_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if let Some(addr) = self.cache[idx].pop() {
                    state.verify_poison(addr, class.object_size(), idx);
                    self.local.on_malloc(class.object_size());
                    if let Some(s) = self.sampler.as_deref_mut() {
                        s.on_alloc(addr, class.object_size());
                    }
                    return addr as *mut u8;
                }
            }
            // Refill boundary: already taking the class lock, so fold the
            // batched deltas into the shared counters while we are here.
            self.counters.flush_local(&self.local);
            let refill_t0 = Instant::now();
            let refilled = state.refill(&mut self.vectors[idx], class, self.token, &mut self.rng);
            self.record_op(TimedOp::Refill, refill_t0, idx as u64);
            if refilled.is_err() {
                // Before reporting exhaustion, return memory the heap is
                // sitting on: first every sender's buffered remote frees
                // (sub-batch buffers can pin the last free spans), then
                // the whole transfer cache (cached objects keep their
                // spans alive). Each step retries the full fast path.
                match pressure {
                    0 => {
                        self.flush_remote(state);
                        state.flush_all_senders();
                    }
                    1 => state.purge_transfer_all(),
                    _ => return std::ptr::null_mut(),
                }
                pressure += 1;
            }
        }
    }

    /// Resolves where a free of `addr` must go with one lock-free page-map
    /// lookup. Pure (no heap mutation): the oracle property test compares
    /// this decision against the legacy linear-scan routing.
    #[inline]
    pub(crate) fn route(&self, state: &GlobalHeap, addr: usize) -> FreeRoute {
        let Some(page) = state.page_of_addr(addr) else {
            return FreeRoute::Unowned;
        };
        let Some(info) = state.page_map.get(page) else {
            return FreeRoute::Unowned;
        };
        if !info.is_large() {
            let idx = info.class_code as usize;
            let sv = &self.vectors[idx];
            // Ids are unique within a class, and the page map covers every
            // virtual span (aliases are retargeted when meshed), so this
            // single compare is exactly the old "inside any attached
            // span?" scan.
            if sv.miniheap() == Some(info.id) {
                let offset = addr - info.span_start(state.base_addr(), page);
                let size = sv.object_size();
                let slot = offset / size;
                if !offset.is_multiple_of(size) || slot >= sv.object_count() {
                    return FreeRoute::LocalInvalid;
                }
                return FreeRoute::Local {
                    class_idx: idx,
                    slot,
                };
            }
        }
        FreeRoute::Global { page, info }
    }

    /// Frees `ptr` (Fig 4, `MeshLocal::free`): handled by the owning
    /// shuffle vector when the object is local, else routed through the
    /// global heap with the already-decoded page-map entry (lock-free
    /// queue push for small objects, §4.4.4).
    ///
    /// # Safety
    ///
    /// `ptr` must be a pointer previously returned by this heap family's
    /// malloc and not already freed. Unlike the seed, hostile pointers are
    /// *detected* on every path — foreign, misaligned, tail-waste, and
    /// double frees are counted and discarded rather than corrupting the
    /// freelist — but the contract stays that of C `free`.
    pub unsafe fn free(&mut self, state: &GlobalHeap, ptr: *mut u8) {
        let addr = ptr as usize;
        if let Some(s) = self.sampler.as_deref() {
            // Retire a sampled object on any route (local, queued remote,
            // large). The global entry points hook themselves, so every
            // free is checked exactly once.
            s.telemetry().on_free(addr);
        }
        if state.harden.quarantine_on() {
            // Before any routing: a second free of a parked pointer is a
            // deterministic double free (its slot is still claimed, so
            // the routed checks below would accept it).
            if self.quarantine_set.contains(&addr) {
                state.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                state.harden_violation(HardenKind::DoubleFree, addr);
                return;
            }
            // Only local-route frees are parked: the remote path already
            // defers reuse behind the queue drain, and large objects are
            // covered by guard pages instead.
            if let FreeRoute::Local { class_idx, slot } = self.route(state, addr) {
                if !self.cache[class_idx].is_empty() && self.cache[class_idx].contains(&addr) {
                    state.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                    state.harden_violation(HardenKind::DoubleFree, addr);
                    return;
                }
                let sv = &self.vectors[class_idx];
                if sv.is_available(slot) {
                    state.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                    state.harden_violation(HardenKind::DoubleFree, addr);
                    return;
                }
                let size = sv.object_size();
                state.poison_object(addr, size, class_idx);
                self.quarantine_push(state, addr, class_idx, size);
                return;
            }
        }
        self.free_now(state, addr);
    }

    /// The routed free proper — everything [`ThreadHeapCore::free`] does
    /// after the quarantine decision. Also the quarantine eviction path,
    /// which must bypass the parking logic (the evicted object *is* the
    /// delayed free).
    unsafe fn free_now(&mut self, state: &GlobalHeap, addr: usize) {
        match self.route(state, addr) {
            FreeRoute::Local { class_idx, slot } => {
                // A batch-cache-held slot has its claim bit set but is not
                // in the vector's avail mask, so `free_slot` alone would
                // accept a duplicate free of it *and* leave the address
                // parked for a second hand-out. The membership scan is
                // bounded by one batch and only runs while a partially
                // consumed batch exists for this class.
                if !self.cache[class_idx].is_empty() && self.cache[class_idx].contains(&addr) {
                    state.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                    state.harden_violation(HardenKind::DoubleFree, addr);
                    return;
                }
                let sv = &mut self.vectors[class_idx];
                if sv.free_slot(slot, &mut self.rng) {
                    let size = sv.object_size();
                    // Freed memory is poisoned now and verified when the
                    // slot is next handed out.
                    state.poison_object(addr, size, class_idx);
                    self.local.on_free(size);
                } else {
                    state.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                    state.harden_violation(HardenKind::DoubleFree, addr);
                }
            }
            FreeRoute::LocalInvalid | FreeRoute::Unowned => {
                state.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
                state.harden_violation(HardenKind::InvalidFree, addr);
            }
            FreeRoute::Global { page, info } => {
                // Small remote frees are buffered per class and flushed as
                // one queue node per batch: the sender-side half of the
                // transfer-cache amortization. Large objects (immediate
                // page release) stay on the direct path.
                if self.batched && !info.is_large() && state.transfer.batching_enabled() {
                    // Make the buffers reachable by stats snapshots and the
                    // exhaustion fallback before the first free can hide in
                    // them. The epoch compare keeps this to one branch per
                    // free; it re-fires only after a fork wipes the registry.
                    if self.sender_epoch != state.sender_epoch() {
                        self.sender_epoch = state.register_sender(&self.remote_bufs);
                    }
                    let idx = info.class_code as usize;
                    let mut buf = self.remote_bufs.lock(idx);
                    // An address still in the buffer cannot have been
                    // re-allocated (its free has not drained), so a
                    // second appearance is always a double free. The
                    // check must precede the flush: flushing between the
                    // two copies of a back-to-back pair would let the
                    // second drain in a later epoch, after the slot's
                    // claim bit may have been re-claimed by a re-attach.
                    if buf.contains(&addr) {
                        state.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Lazy flush: a full buffer is handed to the queue
                    // before the *next* push, never between two adjacent
                    // frees of the same address. The buf lock is a leaf —
                    // drop it before the queue push takes nothing, but
                    // settle_after_free may take shard locks.
                    let full = if buf.len() >= state.transfer.batch() {
                        Some(std::mem::take(&mut *buf))
                    } else {
                        None
                    };
                    buf.push(addr);
                    drop(buf);
                    if let Some(mut batch) = full {
                        state.flush_remote_batch(idx, &mut batch);
                        state.settle_after_free();
                    }
                } else {
                    state.free_routed(addr, page, info);
                }
            }
        }
    }

    /// Parks one freed object in the quarantine, evicting (randomly) as
    /// long as either bound — slots or bytes — is exceeded. The parked
    /// slot stays claimed: meshing copies it, reallocation cannot reach
    /// it, and its memory holds the poison pattern the whole time.
    fn quarantine_push(&mut self, state: &GlobalHeap, addr: usize, class_idx: usize, size: usize) {
        self.quarantine.push((addr, class_idx));
        self.quarantine_set.insert(addr);
        self.quarantine_bytes += size;
        while self.quarantine.len() > state.harden.quarantine_slots
            || self.quarantine_bytes > state.harden.quarantine_bytes
        {
            self.quarantine_evict(state);
        }
    }

    /// Evicts one random quarantine entry: verifies its poison (a
    /// dangling write while parked lands here) and then completes the
    /// delayed free through the normal path.
    fn quarantine_evict(&mut self, state: &GlobalHeap) {
        if self.quarantine.is_empty() {
            return;
        }
        let pick = self.rng.below(self.quarantine.len() as u32) as usize;
        let (addr, class_idx) = self.quarantine.swap_remove(pick);
        self.quarantine_set.remove(&addr);
        let size = SizeClass::from_index(class_idx).object_size();
        self.quarantine_bytes -= size;
        state.verify_poison(addr, size, class_idx);
        unsafe { self.free_now(state, addr) };
    }

    /// Empties the quarantine (thread teardown, fork, explicit settle):
    /// every parked free completes through the normal path.
    pub fn drain_quarantine(&mut self, state: &GlobalHeap) {
        while !self.quarantine.is_empty() {
            self.quarantine_evict(state);
        }
    }

    /// Flushes every pending sender-side remote-free buffer (one batch
    /// node per non-empty class). Lock-free; called at detach, by stats
    /// readers that need settled queues, and on demand.
    pub fn flush_remote(&mut self, state: &GlobalHeap) {
        let t0 = Instant::now();
        let mut flushed = 0u64;
        for idx in 0..NUM_SIZE_CLASSES {
            let mut buf = self.remote_bufs.take(idx);
            if !buf.is_empty() {
                state.flush_remote_batch(idx, &mut buf);
                flushed += 1;
            }
        }
        if flushed > 0 {
            self.record_op(TimedOp::TransferFlush, t0, flushed);
        }
    }

    /// Folds this thread's batched statistics deltas into the shared
    /// counters immediately (normally they fold at refill boundaries).
    pub fn flush_stats(&self) {
        self.counters.flush_local(&self.local);
    }

    /// Returns every attached MiniHeap to its class shard (thread exit),
    /// flushes the remote-free buffers, parks the thread's batch-cache
    /// remainders back in the transfer cache, and flushes the batched
    /// statistics deltas. Nothing this thread held can be stranded.
    pub fn detach_all(&mut self, state: &GlobalHeap) {
        self.drain_quarantine(state);
        self.flush_remote(state);
        for (idx, sv) in self.vectors.iter_mut().enumerate() {
            if sv.miniheap().is_some() || !self.cache[idx].is_empty() {
                state.release_vector_and_cache(
                    SizeClass::from_index(idx),
                    sv,
                    &mut self.cache[idx],
                );
            }
        }
        self.counters.flush_local(&self.local);
    }

    /// Number of classes with a currently attached MiniHeap (diagnostic).
    pub fn attached_count(&self) -> usize {
        self.vectors.iter().filter(|v| v.miniheap().is_some()).count()
    }
}

impl Drop for ThreadHeapCore {
    fn drop(&mut self) {
        // Spans are returned by the owning wrapper (`ThreadHeap::drop`
        // calls `detach_all` with the heap in hand); the delta blocks can
        // retire here, folding any remaining counts into the shared stats.
        // The trace ring (if any) stays registered: its tail remains part
        // of future dumps by design.
        self.counters.unregister_local(&self.local);
        self.counters.unregister_local_hists(&self.hists);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeshConfig;
    use std::sync::Arc;

    fn setup() -> (GlobalHeap, Arc<Counters>) {
        let counters = Arc::new(Counters::default());
        let st = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(32 << 20)
                .seed(11)
                .write_barrier(false),
            Arc::clone(&counters),
        )
        .unwrap();
        (st, counters)
    }

    fn core(counters: &Arc<Counters>, seed: u64, token: u64) -> ThreadHeapCore {
        ThreadHeapCore::new(seed, true, token, Arc::clone(counters), None, true)
    }

    #[test]
    fn malloc_free_roundtrip_small() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 1, 1);
        let p = heap.malloc(&state, 100);
        assert!(!p.is_null());
        unsafe {
            std::ptr::write_bytes(p, 0x5A, 100);
            heap.free(&state, p);
        }
        let s = counters.snapshot();
        assert_eq!(s.mallocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn local_free_does_not_touch_global_path() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 2, 1);
        let p = heap.malloc(&state, 64);
        unsafe { heap.free(&state, p) };
        state.drain_all();
        let s = counters.snapshot();
        assert_eq!(s.remote_frees, 0, "free stayed local");
        assert_eq!(s.remote_free_queued, 0, "free never touched a queue");
    }

    #[test]
    fn large_allocation_via_global() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 3, 1);
        let p = heap.malloc(&state, 64 * 1024);
        assert!(!p.is_null());
        assert_eq!(p as usize % 4096, 0, "large objects are page-aligned");
        assert_eq!(counters.snapshot().large_allocs, 1);
        unsafe { heap.free(&state, p) };
        assert_eq!(counters.snapshot().remote_frees, 1);
    }

    #[test]
    fn exhausted_vector_refills_transparently() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 4, 1);
        let class = SizeClass::for_size(512).unwrap();
        let per_span = class.object_count();
        let mut ptrs = vec![];
        for _ in 0..per_span * 3 {
            let p = heap.malloc(&state, 512);
            assert!(!p.is_null());
            ptrs.push(p);
        }
        // Three spans' worth allocated; all addresses distinct.
        let set: std::collections::HashSet<_> = ptrs.iter().collect();
        assert_eq!(set.len(), ptrs.len());
        assert!(counters.snapshot().refills >= 3);
        for p in ptrs {
            unsafe { heap.free(&state, p) };
        }
    }

    #[test]
    fn refills_and_flushes_feed_latency_histograms() {
        let (state, counters) = setup();
        let mut a = core(&counters, 31, 1);
        let mut b = core(&counters, 32, 2);
        let class = SizeClass::for_size(512).unwrap();
        let mut ptrs = vec![];
        for _ in 0..class.object_count() * 2 {
            let p = a.malloc(&state, 512);
            assert!(!p.is_null());
            ptrs.push(p);
        }
        for p in ptrs {
            unsafe { b.free(&state, p) };
        }
        b.flush_remote(&state);
        let snap = counters.snapshot();
        assert!(
            snap.latency.count(TimedOp::Refill) >= 2,
            "each span refill is timed: {:?}",
            snap.latency.count(TimedOp::Refill)
        );
        assert!(
            snap.latency.count(TimedOp::TransferFlush) >= 1,
            "explicit remote flush is timed"
        );
    }

    #[test]
    fn cross_thread_free_goes_through_queue() {
        let (state, counters) = setup();
        let mut a = core(&counters, 5, 1);
        let mut b = core(&counters, 6, 2);
        let p = a.malloc(&state, 256);
        // Thread B frees A's pointer: must take the queued global path
        // (buffered in B until the batch fills or B flushes).
        unsafe { b.free(&state, p) };
        assert_eq!(counters.snapshot().remote_free_queued, 0, "buffered in sender");
        b.flush_remote(&state);
        assert_eq!(counters.snapshot().remote_free_queued, 1);
        assert_eq!(counters.snapshot().remote_free_batches, 1);
        state.drain_all();
        let s = counters.snapshot();
        assert_eq!(s.remote_frees, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.remote_free_drained, 1);
    }

    #[test]
    fn detach_all_returns_everything() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 7, 1);
        let p1 = heap.malloc(&state, 32);
        let p2 = heap.malloc(&state, 4000);
        assert!(heap.attached_count() >= 2);
        heap.detach_all(&state);
        assert_eq!(heap.attached_count(), 0);
        // Frees after detach go through the global heap and still work
        // (buffered in the sender until flushed).
        unsafe {
            heap.free(&state, p1);
            heap.free(&state, p2);
        }
        heap.flush_remote(&state);
        state.drain_all();
        assert_eq!(counters.snapshot().remote_frees, 2);
        assert_eq!(counters.snapshot().live_bytes, 0);
    }

    #[test]
    fn null_on_arena_exhaustion() {
        let counters = Arc::new(Counters::default());
        let st = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(32 * 4096)
                .seed(1)
                .write_barrier(false),
            Arc::clone(&counters),
        )
        .unwrap();
        let mut heap = core(&counters, 8, 1);
        let mut got_null = false;
        for _ in 0..100_000 {
            if heap.malloc(&st, 16384).is_null() {
                got_null = true;
                break;
            }
        }
        assert!(got_null, "exhaustion must surface as null");
    }

    #[test]
    fn local_double_free_detected_and_discarded() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 9, 1);
        let p = heap.malloc(&state, 128);
        unsafe {
            heap.free(&state, p);
            heap.free(&state, p); // second free of the same local object
        }
        let s = counters.snapshot();
        assert_eq!(s.frees, 1, "only the first free applied");
        assert_eq!(s.double_frees, 1, "duplicate detected on the local path");
        assert_eq!(s.live_bytes, 0);
        // The heap is still fully usable afterwards.
        let q = heap.malloc(&state, 128);
        assert!(!q.is_null());
        unsafe { heap.free(&state, q) };
    }

    #[test]
    fn local_invalid_frees_detected_and_discarded() {
        let (state, counters) = setup();
        let mut heap = core(&counters, 10, 1);
        let p = heap.malloc(&state, 64);
        unsafe {
            // Misaligned interior pointer into our own attached span.
            heap.free(&state, p.add(1));
            // Wild pointer outside the arena entirely.
            heap.free(&state, 0x1000 as *mut u8);
        }
        let s = counters.snapshot();
        assert_eq!(s.invalid_frees, 2);
        assert_eq!(s.frees, 0, "no invalid free was applied");
        // The object itself is still live and freeable.
        unsafe { heap.free(&state, p) };
        assert_eq!(counters.snapshot().frees, 1);
        assert_eq!(counters.snapshot().live_bytes, 0);
    }

    #[test]
    fn tail_waste_free_is_invalid_not_corrupting() {
        // 4096 % 48 != 0: the span has tail waste past the last slot. A
        // free there used to push an out-of-range offset into the shuffle
        // vector; it must now be rejected.
        let (state, counters) = setup();
        let mut heap = core(&counters, 11, 1);
        let p = heap.malloc(&state, 48) as usize;
        let class = SizeClass::for_size(48).unwrap();
        let page = state.page_of_addr(p).unwrap();
        let info = state.page_map.get(page).unwrap();
        let span_start = info.span_start(state.base_addr(), page);
        let tail = span_start + class.object_count() * 48;
        assert_eq!(
            heap.route(&state, tail),
            FreeRoute::LocalInvalid,
            "tail waste routes as invalid"
        );
        unsafe { heap.free(&state, tail as *mut u8) };
        assert_eq!(counters.snapshot().invalid_frees, 1);
        unsafe { heap.free(&state, p as *mut u8) };
        assert_eq!(counters.snapshot().live_bytes, 0);
    }

    #[test]
    fn sampler_tracks_allocations_through_free() {
        // An aggressive rate (every ~256 bytes) on a churny mix: the
        // sampler must see allocations on the fast path, the refill path,
        // and the large path, and retire every sample on free.
        let counters = Arc::new(Counters::default());
        let config = MeshConfig::default()
            .arena_bytes(32 << 20)
            .seed(21)
            .profiling(true)
            .prof_sample_bytes(256)
            .write_barrier(false);
        let state = GlobalHeap::new(config, Arc::clone(&counters)).unwrap();
        let mut heap =
            ThreadHeapCore::new(5, true, 1, Arc::clone(&counters), state.telemetry.clone(), true);
        let t = state.telemetry.as_ref().unwrap();
        let mut live = Vec::new();
        for i in 0..4000usize {
            let size = [64, 200, 1000, 20_000][i % 4];
            let p = heap.malloc(&state, size);
            assert!(!p.is_null());
            live.push(p);
        }
        let s = t.stats();
        assert!(s.samples > 500, "rate 256 over ~21 MB: got {} samples", s.samples);
        assert!(s.live_bytes_estimate > 0);
        assert_eq!(s.samples_dropped, 0);
        for p in live {
            unsafe { heap.free(&state, p) };
        }
        state.drain_all();
        let s = t.stats();
        assert_eq!(s.live_samples, 0, "every sampled object retired");
        assert_eq!(s.live_bytes_estimate, 0);
        assert_eq!(s.sampled_frees, s.samples);
    }

    /// Oracle: the page-map routing must agree with the legacy
    /// linear-scan routing — "is the address inside any attached span?"
    /// — on every reachable state. Random malloc/free interleavings with
    /// two thread heaps (handoffs make some frees remote) drive both
    /// classifiers over the same addresses.
    #[test]
    fn route_agrees_with_linear_scan_oracle() {
        /// The routing the old free path implemented: first vector whose
        /// attached spans contain the address wins; everything else goes
        /// to the global heap.
        fn linear_scan(heap: &ThreadHeapCore, addr: usize) -> Option<usize> {
            heap.vectors
                .iter()
                .position(|sv| sv.miniheap().is_some() && sv.contains(addr))
        }

        for seed in [3u64, 17, 95] {
            let (state, counters) = setup();
            let mut heaps = [core(&counters, seed, 1), core(&counters, seed ^ 77, 2)];
            let mut rng = Rng::with_seed(seed.wrapping_mul(0x9e37_79b9));
            // (addr, owner, size): owner = which heap allocated it.
            let mut live: Vec<(usize, usize, usize)> = Vec::new();
            for _ in 0..20_000 {
                let op = rng.below(100);
                if op < 55 || live.is_empty() {
                    let who = rng.below(2) as usize;
                    let size = match rng.below(4) {
                        0 => 16 + rng.below(100) as usize,
                        1 => 500 + rng.below(600) as usize,
                        2 => 2048,
                        _ => 16384 + rng.below(9000) as usize, // large path
                    };
                    let p = heaps[who].malloc(&state, size);
                    assert!(!p.is_null());
                    live.push((p as usize, who, size));
                } else {
                    let pick = rng.below(live.len() as u32) as usize;
                    let (addr, owner, _) = live.swap_remove(pick);
                    // Hand off ~every third free to the non-owner.
                    let who = if rng.below(3) == 0 { 1 - owner } else { owner };
                    let (a, b) = heaps.split_at_mut(1);
                    let freer = if who == 0 { &mut a[0] } else { &mut b[0] };
                    let old = linear_scan(freer, addr);
                    let new = freer.route(&state, addr);
                    match (old, new) {
                        (Some(idx), FreeRoute::Local { class_idx, slot }) => {
                            assert_eq!(idx, class_idx, "class disagrees at {addr:#x}");
                            let sv = &freer.vectors[class_idx];
                            assert!(slot < sv.object_count());
                            assert!(!sv.is_available(slot), "live slot free in mask");
                        }
                        (None, FreeRoute::Global { .. }) => {}
                        (old, new) => {
                            panic!("routing diverged at {addr:#x}: old {old:?}, new {new:?}")
                        }
                    }
                    unsafe { freer.free(&state, addr as *mut u8) };
                }
            }
            // Misaligned probes: old routing said "local" (then corrupted);
            // new routing must flag them instead — the one intentional
            // divergence.
            for &(addr, owner, size) in &live {
                if size > 1 {
                    let freer = &heaps[owner];
                    if let Some(idx) = linear_scan(freer, addr + 1) {
                        assert_eq!(
                            freer.route(&state, addr + 1),
                            FreeRoute::LocalInvalid,
                            "misaligned pointer in class {idx} must be rejected"
                        );
                    }
                }
            }
            for (addr, owner, _) in live.drain(..) {
                unsafe { heaps[owner].free(&state, addr as *mut u8) };
            }
            for h in &mut heaps {
                h.detach_all(&state);
            }
            state.drain_all();
            let s = counters.snapshot();
            assert_eq!(s.live_bytes, 0, "seed {seed}: accounting balanced");
            assert_eq!(s.mallocs, s.frees, "seed {seed}: every object freed once");
            assert_eq!(s.invalid_frees, 0, "seed {seed}");
            assert_eq!(s.double_frees, 0, "seed {seed}");
        }
    }
}
