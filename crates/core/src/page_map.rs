//! The lock-free page → MiniHeap table (§4.4.4), shared by every shard of
//! the sharded global heap.
//!
//! The seed implementation kept this table inside the arena, so every
//! pointer lookup on the free path took the (then-global) heap lock. The
//! sharded heap instead preallocates one `AtomicU64` per page of the
//! arena's virtual *reservation* and packs everything the lock-free
//! remote-free path needs into the entry:
//!
//! ```text
//! bits  0..32   raw MiniHeapId (0 = page unowned)
//! bits 32..40   size-class index, or LARGE_CLASS for large objects
//! bits 40..48   the page's index within its virtual span (small spans
//!               only; spans are ≤ 32 pages so 8 bits are exact)
//! bits 48..64   reserved (zero)
//! ```
//!
//! With `(class, page index)` in hand, a non-local free can compute its
//! slot offset and route itself to the owning class's remote-free queue
//! without touching any lock. See DESIGN.md ("Sharded locking
//! discipline"): entries are *written* only while holding the arena lock
//! (span hand-out, death, and mesh retargeting are arena operations), and
//! read lock-free from anywhere; `Release` stores pair with `Acquire`
//! loads so a reader that observes an entry also observes the MiniHeap
//! registration that produced it.
//!
//! The segmented arena maps and retires file-backed segments at arbitrary
//! ranges inside the reservation, so at any moment the table covers a
//! *discontiguous* set of live segment ranges. The table itself needs no
//! segment awareness: pages of unmapped (reserved or retired) ranges
//! simply hold the zero "unowned" entry, so a stale free into a retired
//! range reads as invalid exactly like a wild pointer, and a range being
//! retired must already be all-zero ([`PageMap::range_is_clear`] asserts
//! this in debug builds).

use crate::miniheap::MiniHeapId;
use crate::span::Span;
use std::sync::atomic::{AtomicU64, Ordering};

/// Class code marking a large-object (§4.4.3) span in the page map.
pub(crate) const LARGE_CLASS: u8 = 0xFF;

/// Decoded page-map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PageInfo {
    /// Owning MiniHeap.
    pub id: MiniHeapId,
    /// Size-class index, or [`LARGE_CLASS`].
    pub class_code: u8,
    /// Index of this page within its virtual span (small classes only;
    /// saturated at 255 for large spans, which never use it).
    pub page_idx: u8,
}

impl PageInfo {
    /// Whether the page belongs to a large-object singleton.
    #[inline]
    pub fn is_large(&self) -> bool {
        self.class_code == LARGE_CLASS
    }

    /// Start address of the *virtual span* containing arena page `page`
    /// (the page this entry was read from), given the arena base. Small
    /// spans only — large spans saturate `page_idx`.
    #[inline]
    pub fn span_start(&self, base: usize, page: u32) -> usize {
        debug_assert!(!self.is_large());
        base + (page as usize - self.page_idx as usize) * crate::size_classes::PAGE_SIZE
    }
}

/// One packed `AtomicU64` per arena page.
#[derive(Debug)]
pub(crate) struct PageMap {
    entries: Box<[AtomicU64]>,
}

impl PageMap {
    /// Creates a table covering `pages` arena pages, all unowned.
    ///
    /// Allocated with `alloc_zeroed` rather than a collect loop: arenas
    /// are reserve-only (a 64 GiB virtual arena is normal), and the
    /// all-zero initial state must not fault in the whole table — only
    /// entries behind actually-carved spans ever get touched.
    pub fn new(pages: usize) -> PageMap {
        use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};
        if pages == 0 {
            return PageMap {
                entries: Box::new([]),
            };
        }
        let layout = Layout::array::<AtomicU64>(pages).expect("page map layout");
        // SAFETY: zeroed memory is a valid `AtomicU64` (value 0), the
        // layout matches the slice we construct, and the Box takes sole
        // ownership of the allocation.
        let entries = unsafe {
            let ptr = alloc_zeroed(layout) as *mut AtomicU64;
            if ptr.is_null() {
                handle_alloc_error(layout);
            }
            Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, pages))
        };
        PageMap { entries }
    }

    #[inline]
    fn pack(id: MiniHeapId, class_code: u8, page_idx: u8) -> u64 {
        id.to_raw() as u64 | (class_code as u64) << 32 | (page_idx as u64) << 40
    }

    /// Lock-free owner lookup for arena page `page`. `None` means the page
    /// is unowned — wild and stale frees are discovered here.
    #[inline]
    pub fn get(&self, page: u32) -> Option<PageInfo> {
        let packed = self.entries.get(page as usize)?.load(Ordering::Acquire);
        let raw = packed as u32;
        if raw == 0 {
            return None;
        }
        Some(PageInfo {
            id: MiniHeapId::from_raw(raw),
            class_code: (packed >> 32) as u8,
            page_idx: (packed >> 40) as u8,
        })
    }

    /// Records `id` as owner of every page of `span`. Must be called with
    /// the arena lock held (see module docs).
    pub fn set_span(&self, span: Span, id: MiniHeapId, class_code: u8) {
        for (i, page) in span.iter_pages().enumerate() {
            let packed = Self::pack(id, class_code, i.min(255) as u8);
            self.entries[page as usize].store(packed, Ordering::Release);
        }
    }

    /// Clears ownership for every page of `span` (arena lock held).
    pub fn clear_span(&self, span: Span) {
        for page in span.iter_pages() {
            self.entries[page as usize].store(0, Ordering::Release);
        }
    }

    /// Whether no page in `[start, start + pages)` is routed to a
    /// MiniHeap. Used (under the arena lock) to validate that a segment
    /// being retired holds no live spans.
    pub fn range_is_clear(&self, start: u32, pages: u32) -> bool {
        (start..start + pages)
            .all(|page| self.entries[page as usize].load(Ordering::Acquire) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_page_indices() {
        let pm = PageMap::new(64);
        let id = MiniHeapId::from_raw(7);
        pm.set_span(Span::new(3, 4), id, 11);
        assert_eq!(pm.get(2), None);
        for i in 0..4u32 {
            let info = pm.get(3 + i).unwrap();
            assert_eq!(info.id, id);
            assert_eq!(info.class_code, 11);
            assert_eq!(info.page_idx, i as u8);
            assert!(!info.is_large());
        }
        pm.clear_span(Span::new(3, 4));
        assert_eq!(pm.get(3), None);
    }

    #[test]
    fn range_is_clear_tracks_routing() {
        let pm = PageMap::new(32);
        assert!(pm.range_is_clear(0, 32));
        pm.set_span(Span::new(8, 2), MiniHeapId::from_raw(3), 1);
        assert!(!pm.range_is_clear(0, 32), "routed pages are not clear");
        assert!(pm.range_is_clear(0, 8), "ranges outside the span are clear");
        assert!(pm.range_is_clear(10, 22));
        pm.clear_span(Span::new(8, 2));
        assert!(pm.range_is_clear(0, 32));
    }

    #[test]
    fn large_marker_and_out_of_range() {
        let pm = PageMap::new(8);
        pm.set_span(Span::new(0, 2), MiniHeapId::from_raw(1), LARGE_CLASS);
        assert!(pm.get(0).unwrap().is_large());
        assert_eq!(pm.get(100), None, "beyond-capacity lookup is None");
    }
}
