//! The background thread (§4.5's mesher, moved off the allocation path,
//! plus the telemetry beat).
//!
//! With [`crate::MeshConfig::background_meshing`] enabled, meshing no
//! longer runs inline on the free path: a dedicated thread flushes every
//! class's remote-free queue and runs a pass when the shared
//! [`MeshScheduler`](crate::global_heap) says one is due. The §4.5
//! semantics are unchanged — same rate limiter, same low-yield pause rule
//! (and the pause is still lifted by a free reaching the global heap) —
//! only the executing thread differs. With profiling on (`MESH_PROF`)
//! the same thread also carries the telemetry beat: interval profile
//! dumps and dumps requested by `SIGUSR2`/`mesh_prof_dump` requests.
//!
//! ## Parking
//!
//! The thread parks until the *next deadline* — the meshing scheduler's
//! next due time or the next interval dump, whichever is sooner
//! (`GlobalHeap::next_park`) — instead of polling in fixed 50 ms slices
//! as it used to. A fully idle heap (paused timer, no dump interval)
//! parks in [`IDLE_PARK`] slices, ~20× fewer wakeups than the old
//! polling. The §4.5 pause is lifted asynchronously by a free reaching
//! the global heap, so an idle park may overshoot the first pass after a
//! resume by up to one slice — bounded staleness the 100 ms-granularity
//! scheduler already tolerates.
//!
//! ## Shutdown handshake
//!
//! The thread holds only a `Weak` reference to the heap, so heap teardown
//! is never blocked on it. Dropping the [`BackgroundMesher`] handle
//! (stored inside `MeshInner`, so it drops with the heap) sets the stop
//! flag and unparks the thread; the thread observes the flag — or fails
//! to upgrade its `Weak` — and exits. The thread is deliberately *not*
//! joined: if the final heap handle is dropped by the mesher itself
//! (possible when a pass outlives every user handle), a join would be a
//! self-join. Unpark tokens make even an [`IDLE_PARK`] exit immediate.

use crate::alloc_api::{with_internal_alloc, MeshInner};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Park slice when nothing is scheduled (idle heap): long enough that an
/// idle process stays quiet, short enough that a lifted §4.5 pause or a
/// signal-requested dump is honoured promptly.
pub(crate) const IDLE_PARK: Duration = Duration::from_secs(1);

/// Handle to a running background mesher. Signals shutdown on drop.
#[derive(Debug)]
pub(crate) struct BackgroundMesher {
    stop: Arc<AtomicBool>,
    thread: std::thread::Thread,
}

impl BackgroundMesher {
    /// Spawns the mesher for the heap behind `inner`.
    pub fn spawn(inner: Weak<MeshInner>) -> BackgroundMesher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mesh-bg-mesher".into())
            .spawn(move || run(inner, stop2))
            .expect("failed to spawn background mesher");
        BackgroundMesher {
            stop,
            thread: handle.thread().clone(),
        }
    }
}

impl Drop for BackgroundMesher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

fn run(inner: Weak<MeshInner>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Upgrade per tick only: holding a strong reference across parks
        // would keep a dead heap's arena mapped forever. A failed upgrade
        // is a race window, not idleness — either spawn-time (we start
        // inside `Arc::new_cyclic`, before the heap's Arc exists) or
        // teardown (the stop flag is about to land) — so park briefly,
        // not for an idle slice that would delay the first pass by a
        // second.
        let mut park = Duration::from_millis(1);
        if let Some(inner) = inner.upgrade() {
            // Internal-allocation guard: passes and dumps allocate; when
            // this heap is also the process allocator those allocations
            // must go to the system allocator, not recurse into Mesh.
            with_internal_alloc(|| {
                if inner.state.rt.background_meshing {
                    inner.state.drain_all();
                    inner.state.maybe_mesh();
                }
                inner.state.telemetry_tick();
            });
            park = inner.state.next_park();
        }
        std::thread::park_timeout(park);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Mesh, MeshConfig};
    use std::time::Duration;

    #[test]
    fn next_park_tracks_deadlines_not_fixed_slices() {
        use crate::global_heap::GlobalHeap;
        use crate::stats::Counters;
        use std::sync::Arc;
        let heap = |cfg: MeshConfig| {
            GlobalHeap::new(
                cfg.arena_bytes(16 << 20).seed(1).write_barrier(false),
                Arc::new(Counters::default()),
            )
            .unwrap()
        };
        // Nothing scheduled (no background meshing, no telemetry, sensing
        // off): one full idle slice — the ~20× wakeup cut over 50 ms
        // polling.
        let h = heap(MeshConfig::default().sense_interval(None));
        assert_eq!(h.next_park(), super::IDLE_PARK);
        // Default-on sensing (1 s interval) bounds the park by the poll.
        let h = heap(MeshConfig::default());
        assert!(h.next_park() <= Duration::from_secs(1));
        // Background meshing with a 100 ms period: park to the deadline.
        let h = heap(
            MeshConfig::default()
                .sense_interval(None)
                .background_meshing(true)
                .mesh_period(Duration::from_millis(100)),
        );
        let park = h.next_park();
        assert!(park <= Duration::from_millis(100), "{park:?}");
        assert!(park >= Duration::from_millis(1), "{park:?}");
        // A low-yield pass pauses the timer (§4.5): no deadline remains,
        // so the thread parks idle instead of polling the paused clock.
        h.mesh_now();
        assert!(h.scheduler.is_paused(), "empty heap pass must pause");
        assert_eq!(h.next_park(), super::IDLE_PARK);
        // The telemetry dump interval bounds the park when it is sooner.
        let h = heap(
            MeshConfig::default()
                .background_meshing(true)
                .mesh_period(Duration::from_secs(30))
                .profiling(true)
                .prof_interval(Some(Duration::from_millis(20))),
        );
        assert!(h.next_park() <= Duration::from_millis(20));
    }

    #[test]
    fn background_mesher_meshes_without_explicit_calls() {
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(256 << 20)
                .seed(77)
                .mesh_period(Duration::from_millis(5))
                .background_meshing(true),
        )
        .unwrap();
        let mut th = mesh.thread_heap();
        // Fragment: allocate many 64 B objects, free 7 of every 8.
        let ptrs: Vec<usize> = (0..32_768).map(|_| th.malloc(64) as usize).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 != 0 {
                unsafe { th.free(p as *mut u8) };
            }
        }
        drop(th); // detach so the spans become mesh candidates
        // No mesh_now() anywhere: only the background thread can compact.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let s = mesh.stats();
            if s.spans_meshed > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background mesher never ran a productive pass: {s:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Survivors still readable and freeable afterwards.
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 == 0 {
                unsafe { mesh.free(p as *mut u8) };
            }
        }
        mesh.purge_dirty();
        assert_eq!(mesh.stats().live_bytes, 0);
    }

    #[test]
    fn profiling_heap_serves_dump_requests_via_background_thread() {
        // Profiling alone (no background meshing) must still spawn the
        // thread, and a requested dump — the SIGUSR2 path minus the
        // signal — must land in MESH_PROF_PATH within one idle slice.
        let path = std::env::temp_dir().join(format!(
            "mesh-mesher-dump-{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(3)
                .profiling(true)
                .prof_sample_bytes(1024)
                .prof_path(Some(path.clone())),
        )
        .unwrap();
        let p = mesh.malloc(100_000); // large: traced exactly
        assert!(!p.is_null());
        mesh.request_profile_dump();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(s) = std::fs::read_to_string(&path) {
                assert!(s.contains("\"mesh_profile_version\":1"), "{s}");
                // Large allocations account page-rounded: 25 pages.
                assert!(s.contains("\"live_bytes_exact\":102400"), "{s}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background thread never served the dump request"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        unsafe { mesh.free(p) };
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropping_the_heap_stops_the_mesher() {
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(5)
                .mesh_period(Duration::from_millis(1))
                .background_meshing(true),
        )
        .unwrap();
        let p = mesh.malloc(64);
        unsafe { mesh.free(p) };
        drop(mesh);
        // Nothing to assert beyond "no hang / no crash": the thread holds
        // only a Weak and the drop signalled its stop flag.
        std::thread::sleep(Duration::from_millis(20));
    }
}
