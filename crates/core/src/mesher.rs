//! The background meshing thread (§4.5, moved off the allocation path).
//!
//! With [`crate::MeshConfig::background_meshing`] enabled, meshing no
//! longer runs inline on the free path: a dedicated thread wakes a few
//! times per mesh period, flushes every class's remote-free queue, and
//! runs a pass when the shared [`MeshScheduler`](crate::global_heap)
//! says one is due. The §4.5 semantics are unchanged — same rate limiter,
//! same low-yield pause rule (and the pause is still lifted by a free
//! reaching the global heap) — only the executing thread differs.
//!
//! ## Shutdown handshake
//!
//! The thread holds only a `Weak` reference to the heap, so heap teardown
//! is never blocked on it. Dropping the [`BackgroundMesher`] handle
//! (stored inside `MeshInner`, so it drops with the heap) sets the stop
//! flag and unparks the thread; the thread observes the flag — or fails
//! to upgrade its `Weak` — and exits. The thread is deliberately *not*
//! joined: if the final heap handle is dropped by the mesher itself
//! (possible when a pass outlives every user handle), a join would be a
//! self-join. The thread parks in short slices, so it exits promptly.

use crate::alloc_api::{with_internal_alloc, MeshInner};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Upper bound on one park slice: keeps shutdown latency low even with
/// multi-second mesh periods.
const MAX_PARK: Duration = Duration::from_millis(50);

/// Handle to a running background mesher. Signals shutdown on drop.
#[derive(Debug)]
pub(crate) struct BackgroundMesher {
    stop: Arc<AtomicBool>,
    thread: std::thread::Thread,
}

impl BackgroundMesher {
    /// Spawns the mesher for the heap behind `inner`.
    pub fn spawn(inner: Weak<MeshInner>) -> BackgroundMesher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mesh-bg-mesher".into())
            .spawn(move || run(inner, stop2))
            .expect("failed to spawn background mesher");
        BackgroundMesher {
            stop,
            thread: handle.thread().clone(),
        }
    }
}

impl Drop for BackgroundMesher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

fn run(inner: Weak<MeshInner>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Upgrade per tick only: holding a strong reference across parks
        // would keep a dead heap's arena mapped forever.
        let mut park = MAX_PARK;
        if let Some(inner) = inner.upgrade() {
            // Internal-allocation guard: the pass allocates candidate
            // lists; when this heap is also the process allocator those
            // must go to the system allocator, not recurse into Mesh.
            with_internal_alloc(|| {
                inner.state.drain_all();
                inner.state.maybe_mesh();
            });
            park = inner.state.rt.mesh_period().min(MAX_PARK).max(Duration::from_millis(1));
        }
        std::thread::park_timeout(park);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Mesh, MeshConfig};
    use std::time::Duration;

    #[test]
    fn background_mesher_meshes_without_explicit_calls() {
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(256 << 20)
                .seed(77)
                .mesh_period(Duration::from_millis(5))
                .background_meshing(true),
        )
        .unwrap();
        let mut th = mesh.thread_heap();
        // Fragment: allocate many 64 B objects, free 7 of every 8.
        let ptrs: Vec<usize> = (0..32_768).map(|_| th.malloc(64) as usize).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 != 0 {
                unsafe { th.free(p as *mut u8) };
            }
        }
        drop(th); // detach so the spans become mesh candidates
        // No mesh_now() anywhere: only the background thread can compact.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let s = mesh.stats();
            if s.spans_meshed > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background mesher never ran a productive pass: {s:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Survivors still readable and freeable afterwards.
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 == 0 {
                unsafe { mesh.free(p as *mut u8) };
            }
        }
        mesh.purge_dirty();
        assert_eq!(mesh.stats().live_bytes, 0);
    }

    #[test]
    fn dropping_the_heap_stops_the_mesher() {
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(5)
                .mesh_period(Duration::from_millis(1))
                .background_meshing(true),
        )
        .unwrap();
        let p = mesh.malloc(64);
        unsafe { mesh.free(p) };
        drop(mesh);
        // Nothing to assert beyond "no hang / no crash": the thread holds
        // only a Weak and the drop signalled its stop flag.
        std::thread::sleep(Duration::from_millis(20));
    }
}
