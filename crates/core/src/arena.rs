//! The meshable arena (§4.4.1): a single file-backed mapping from which
//! every span and large object is carved.
//!
//! The arena reserves one contiguous `MAP_SHARED` mapping of a memory file
//! ([`crate::sys::MemFile`]). Virtual page *i* initially maps file page *i*
//! (the *identity* mapping); meshing retargets a virtual span at another
//! span's file range, and the arena restores identities when meshed
//! MiniHeaps die.
//!
//! Freed spans are kept in two sets of bins, exactly as §4.4.1:
//!
//! * **dirty** — recently freed, physical pages still committed; preferred
//!   for reuse because they are hot and reclamation is expensive.
//! * **clean** — released to the OS (demand-zero on next touch under
//!   punch-hole; possibly stale under the `MADV_DONTNEED` fallback — the
//!   allocator never assumes zeroed spans).
//!
//! Dirty pages are released en masse once they exceed the configured
//! threshold (64 MB in the paper) or whenever meshing runs.
//!
//! The page→MiniHeap table used for constant-time pointer lookup on free
//! (§4.4.4) lives in [`crate::page_map`] — it is lock-free and shared by
//! every shard, while the arena itself sits behind the sharded heap's
//! leaf lock (see DESIGN.md). The arena keeps the committed-page
//! accounting that serves as the physical-footprint metric.

use crate::barrier::BarrierGuard;
use crate::config::MeshConfig;
use crate::error::MeshError;
use crate::span::Span;
use crate::stats::Counters;
use crate::sys::{self, MemFile, ReleaseStrategy, PAGE_SIZE};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a span handed out by [`Arena::alloc_span`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSource {
    /// Fresh, never-used pages from the high-water bump frontier.
    Fresh,
    /// Reused dirty pages (still committed, contents stale).
    Dirty,
    /// Reused clean pages (released to the OS since last use).
    Clean,
}

/// The meshable arena. All methods require external synchronization (the
/// sharded heap's arena leaf lock); the arena itself performs no locking.
#[derive(Debug)]
pub struct Arena {
    file: MemFile,
    base: *mut u8,
    pages: u32,
    strategy: ReleaseStrategy,
    high_water: u32,
    /// Clean spans, binned by exact page count.
    clean: BTreeMap<u32, Vec<u32>>,
    /// Dirty spans, binned by exact page count.
    dirty: BTreeMap<u32, Vec<u32>>,
    dirty_pages: usize,
    committed_pages: usize,
    max_dirty_pages: usize,
    barrier: Option<BarrierGuard>,
    counters: Arc<Counters>,
}

// SAFETY: the raw base pointer refers to a mapping owned by the arena; the
// arena is only ever used under the sharded heap's arena lock.
unsafe impl Send for Arena {}

impl Arena {
    /// Creates an arena per `config`, registering it with the write-barrier
    /// fault handler when `config.write_barrier` is set.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ArenaCreation`]/[`MeshError::Map`] if the
    /// backing file or mapping cannot be created.
    pub fn new(config: &MeshConfig, counters: Arc<Counters>) -> Result<Arena, MeshError> {
        let bytes = config.arena_pages() * PAGE_SIZE;
        let file = MemFile::create(bytes).map_err(MeshError::ArenaCreation)?;
        let base = sys::map_file_shared(&file).map_err(MeshError::Map)?;
        let strategy = ReleaseStrategy::detect(&file, base);
        let barrier = if config.write_barrier {
            BarrierGuard::register(base as usize, bytes)
        } else {
            None
        };
        Ok(Arena {
            file,
            base,
            pages: config.arena_pages() as u32,
            strategy,
            high_water: 0,
            clean: BTreeMap::new(),
            dirty: BTreeMap::new(),
            dirty_pages: 0,
            committed_pages: 0,
            max_dirty_pages: config.max_dirty_bytes / PAGE_SIZE,
            barrier,
            counters,
        })
    }

    /// Base address of the arena mapping.
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.base as usize
    }

    /// Total capacity in pages.
    #[inline]
    pub fn capacity_pages(&self) -> u32 {
        self.pages
    }

    /// Pages currently committed (the physical footprint).
    #[inline]
    pub fn committed_pages(&self) -> usize {
        self.committed_pages
    }

    /// The active release strategy (diagnostic).
    #[inline]
    pub fn release_strategy(&self) -> ReleaseStrategy {
        self.strategy
    }

    /// The write-barrier guard, if registered.
    #[inline]
    pub(crate) fn barrier(&self) -> Option<&BarrierGuard> {
        self.barrier.as_ref()
    }

    /// Address of arena page `page`.
    #[inline]
    pub fn addr_of_page(&self, page: u32) -> usize {
        debug_assert!(page < self.pages);
        self.base as usize + page as usize * PAGE_SIZE
    }

    /// Arena page containing `addr`, or `None` if outside the arena.
    #[inline]
    pub fn page_of_addr(&self, addr: usize) -> Option<u32> {
        let base = self.base as usize;
        if addr < base {
            return None;
        }
        let page = (addr - base) / PAGE_SIZE;
        if page < self.pages as usize {
            Some(page as u32)
        } else {
            None
        }
    }

    fn set_committed(&mut self, pages: usize) {
        self.committed_pages = pages;
        self.counters.set_committed(pages);
    }

    /// Hands out a span of `pages` pages, preferring dirty, then clean,
    /// then fresh pages (§4.4.1).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ArenaExhausted`] when no free range is large
    /// enough.
    pub fn alloc_span(&mut self, pages: u32) -> Result<(Span, SpanSource), MeshError> {
        assert!(pages > 0);
        // 1. Dirty reuse: exact length only (dirty spans are transient).
        if let Some(list) = self.dirty.get_mut(&pages) {
            if let Some(offset) = list.pop() {
                if list.is_empty() {
                    self.dirty.remove(&pages);
                }
                self.dirty_pages -= pages as usize;
                // Already committed; no accounting change.
                return Ok((Span::new(offset, pages), SpanSource::Dirty));
            }
        }
        // 2. Clean reuse: smallest clean span that fits, splitting the rest
        //    back into the clean bins.
        let fit = self
            .clean
            .range(pages..)
            .next()
            .map(|(&len, _)| len);
        if let Some(len) = fit {
            let list = self.clean.get_mut(&len).expect("bin just observed");
            let offset = list.pop().expect("non-empty bin");
            if list.is_empty() {
                self.clean.remove(&len);
            }
            let (head, tail) = Span::new(offset, len).split(pages);
            if let Some(tail) = tail {
                self.clean.entry(tail.pages).or_default().push(tail.offset);
            }
            self.set_committed(self.committed_pages + pages as usize);
            return Ok((head, SpanSource::Clean));
        }
        // 3. Fresh pages from the bump frontier.
        if self.high_water as usize + pages as usize > self.pages as usize {
            return Err(MeshError::ArenaExhausted {
                requested_pages: pages as usize,
                capacity_pages: self.pages as usize,
            });
        }
        let span = Span::new(self.high_water, pages);
        self.high_water += pages;
        self.set_committed(self.committed_pages + pages as usize);
        Ok((span, SpanSource::Fresh))
    }

    /// Returns a dead span to the dirty bins; triggers a purge when the
    /// dirty threshold is exceeded.
    pub fn free_span_dirty(&mut self, span: Span) {
        debug_assert!(span.end() <= self.high_water);
        self.dirty.entry(span.pages).or_default().push(span.offset);
        self.dirty_pages += span.pages as usize;
        if self.dirty_pages > self.max_dirty_pages {
            self.purge_dirty();
        }
    }

    /// Returns a span whose physical pages were already released (e.g. the
    /// source of a mesh) straight to the clean bins. No accounting change:
    /// the pages were uncommitted at release time.
    pub fn free_span_clean(&mut self, span: Span) {
        debug_assert!(span.end() <= self.high_water);
        self.clean.entry(span.pages).or_default().push(span.offset);
    }

    /// Releases a dead span's physical pages immediately and files it
    /// under clean (used for large objects, §4).
    pub fn release_span(&mut self, span: Span) {
        self.release_physical(span);
        self.free_span_clean(span);
    }

    /// Releases the physical file range behind `span`. The span's identity
    /// mapping must still be intact (guaranteed for any never-meshed span
    /// and for mesh sources before their remap).
    pub fn release_physical(&mut self, span: Span) {
        unsafe {
            self.strategy.release(
                &self.file,
                self.addr_of_page(span.offset) as *mut u8,
                span.byte_len(),
                span.byte_offset(),
            );
        }
        self.set_committed(self.committed_pages - span.pages as usize);
    }

    /// Releases the file range behind a mesh source *after* its virtual
    /// spans were retargeted (so no identity mapping of the range exists).
    ///
    /// Punch-hole releases by file offset directly; `MADV_REMOVE` goes
    /// through a scratch mapping; the `MADV_DONTNEED` fallback cannot work
    /// without a resident mapping, so callers using that strategy must
    /// release *before* the remap via [`Arena::release_physical`] — this
    /// method then only adjusts accounting (as does `Nop`).
    pub fn release_after_remap(&mut self, span: Span) {
        match self.strategy {
            ReleaseStrategy::PunchHole => unsafe {
                self.strategy.release(
                    &self.file,
                    std::ptr::null_mut(), // unused by punch-hole
                    span.byte_len(),
                    span.byte_offset(),
                );
            },
            ReleaseStrategy::MadviseRemove => unsafe {
                if let Ok(scratch) =
                    sys::map_range_shared(&self.file, span.byte_offset(), span.byte_len())
                {
                    self.strategy
                        .release(&self.file, scratch, span.byte_len(), span.byte_offset());
                    sys::unmap(scratch, span.byte_len());
                }
            },
            ReleaseStrategy::MadviseDontNeed | ReleaseStrategy::Nop => {}
        }
        self.set_committed(self.committed_pages - span.pages as usize);
    }

    /// Releases every dirty span to the OS, moving them to the clean bins
    /// (§4.4.1: after 64 MB accumulate, or when meshing runs).
    ///
    /// Adjacent dirty spans are coalesced into maximal contiguous runs and
    /// released with one kernel call per run (dirty spans always have their
    /// identity mapping, so virtual adjacency equals file adjacency); with
    /// thousands of spans dying together this saves the same factor in
    /// syscalls.
    pub fn purge_dirty(&mut self) {
        if self.dirty_pages == 0 {
            return;
        }
        let dirty = std::mem::take(&mut self.dirty);
        let mut spans: Vec<Span> = dirty
            .iter()
            .flat_map(|(&len, offsets)| offsets.iter().map(move |&o| Span::new(o, len)))
            .collect();
        spans.sort_unstable_by_key(|s| s.offset);
        let mut i = 0;
        while i < spans.len() {
            let run_start = spans[i].offset;
            let mut run_end = spans[i].end();
            let mut j = i + 1;
            while j < spans.len() && spans[j].offset == run_end {
                run_end = spans[j].end();
                j += 1;
            }
            self.release_physical(Span::new(run_start, run_end - run_start));
            i = j;
        }
        for span in spans {
            self.free_span_clean(span);
        }
        self.counters
            .pages_purged
            .fetch_add(self.dirty_pages as u64, std::sync::atomic::Ordering::Relaxed);
        self.dirty_pages = 0;
        self.counters
            .dirty_purges
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Bytes currently sitting in the dirty bins.
    pub fn dirty_bytes(&self) -> usize {
        self.dirty_pages * PAGE_SIZE
    }

    // ----- meshing primitives -------------------------------------------

    /// Remaps virtual span `vspan` to alias the file range of `target`
    /// (which must have equal length): the §4.5.1 page-table update.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Map`] if the kernel rejects the remap; the
    /// prior mapping is unchanged in that case.
    pub fn remap_alias(&mut self, vspan: Span, target: Span) -> Result<(), MeshError> {
        assert_eq!(vspan.pages, target.pages, "mesh of unequal spans");
        unsafe {
            sys::remap_fixed(
                self.addr_of_page(vspan.offset) as *mut u8,
                vspan.byte_len(),
                &self.file,
                target.byte_offset(),
            )
            .map_err(MeshError::Map)
        }
    }

    /// Restores the identity mapping of `vspan` (virtual page *i* → file
    /// page *i*), used when meshed MiniHeaps die.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Map`] if the kernel rejects the remap.
    pub fn restore_identity(&mut self, vspan: Span) -> Result<(), MeshError> {
        self.remap_alias(vspan, vspan)
    }

    /// Write-protects `span` (the §4.5.2 barrier's mprotect step).
    pub fn protect_span(&mut self, span: Span) {
        unsafe {
            // mprotect on an established mapping only fails for invalid
            // arguments, which would be an internal bug.
            sys::protect_read(self.addr_of_page(span.offset) as *mut u8, span.byte_len())
                .expect("mprotect(PROT_READ) failed on arena span");
        }
    }

    /// Restores write access to `span`.
    pub fn unprotect_span(&mut self, span: Span) {
        unsafe {
            sys::protect_read_write(self.addr_of_page(span.offset) as *mut u8, span.byte_len())
                .expect("mprotect(PROT_READ|WRITE) failed on arena span");
        }
    }

}

impl Drop for Arena {
    fn drop(&mut self) {
        // Deregister the fault handler range before the mapping disappears.
        self.barrier = None;
        unsafe { sys::unmap(self.base, self.pages as usize * PAGE_SIZE) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(pages: usize) -> Arena {
        let config = MeshConfig::default()
            .arena_bytes(pages * PAGE_SIZE)
            .write_barrier(false);
        Arena::new(&config, Arc::new(Counters::default())).unwrap()
    }

    #[test]
    fn fresh_allocation_bumps_and_commits() {
        let mut a = arena(64);
        let (s1, src1) = a.alloc_span(2).unwrap();
        let (s2, src2) = a.alloc_span(3).unwrap();
        assert_eq!(src1, SpanSource::Fresh);
        assert_eq!(src2, SpanSource::Fresh);
        assert_eq!(s1, Span::new(0, 2));
        assert_eq!(s2, Span::new(2, 3));
        assert_eq!(a.committed_pages(), 5);
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = arena(32);
        assert!(a.alloc_span(32).is_ok());
        match a.alloc_span(1) {
            Err(MeshError::ArenaExhausted { requested_pages, capacity_pages }) => {
                assert_eq!(requested_pages, 1);
                assert_eq!(capacity_pages, 32);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn dirty_reuse_prefers_hot_spans() {
        let mut a = arena(64);
        let (s, _) = a.alloc_span(2).unwrap();
        a.free_span_dirty(s);
        assert_eq!(a.committed_pages(), 2, "dirty spans stay committed");
        let (s2, src) = a.alloc_span(2).unwrap();
        assert_eq!(src, SpanSource::Dirty);
        assert_eq!(s2, s, "dirty span reused");
        assert_eq!(a.committed_pages(), 2);
    }

    #[test]
    fn clean_reuse_recommits_and_splits() {
        let mut a = arena(64);
        let (s, _) = a.alloc_span(4).unwrap();
        a.release_span(s);
        assert_eq!(a.committed_pages(), 0);
        let (head, src) = a.alloc_span(1).unwrap();
        assert_eq!(src, SpanSource::Clean);
        assert_eq!(head, Span::new(0, 1));
        assert_eq!(a.committed_pages(), 1);
        // The 3-page tail is still clean.
        let (tail, src) = a.alloc_span(3).unwrap();
        assert_eq!(src, SpanSource::Clean);
        assert_eq!(tail, Span::new(1, 3));
    }

    #[test]
    fn purge_threshold_releases_dirty() {
        let config = MeshConfig::default()
            .arena_bytes(256 * PAGE_SIZE)
            .max_dirty_bytes(4 * PAGE_SIZE)
            .write_barrier(false);
        let counters = Arc::new(Counters::default());
        let mut a = Arena::new(&config, Arc::clone(&counters)).unwrap();
        let spans: Vec<Span> = (0..3).map(|_| a.alloc_span(2).unwrap().0).collect();
        assert_eq!(a.committed_pages(), 6);
        a.free_span_dirty(spans[0]); // dirty: 2 pages
        a.free_span_dirty(spans[1]); // dirty: 4 pages — at threshold
        assert_eq!(a.dirty_bytes(), 4 * PAGE_SIZE);
        a.free_span_dirty(spans[2]); // exceeds → purge all
        assert_eq!(a.dirty_bytes(), 0);
        assert_eq!(a.committed_pages(), 0);
        assert_eq!(
            counters.snapshot().dirty_purges, 1,
            "exactly one purge event"
        );
        assert_eq!(
            counters.snapshot().pages_purged, 6,
            "all six dirty pages counted"
        );
    }

    #[test]
    fn purge_coalesces_adjacent_spans_into_runs() {
        // Three adjacent 2-page spans freed dirty and purged together:
        // accounting must match regardless of run coalescing.
        let config = MeshConfig::default()
            .arena_bytes(256 * PAGE_SIZE)
            .write_barrier(false);
        let counters = Arc::new(Counters::default());
        let mut a = Arena::new(&config, Arc::clone(&counters)).unwrap();
        let spans: Vec<Span> = (0..3).map(|_| a.alloc_span(2).unwrap().0).collect();
        // Touch the pages so release really has something to drop.
        for s in &spans {
            unsafe {
                std::ptr::write_bytes(a.addr_of_page(s.offset) as *mut u8, 1, s.byte_len());
            }
        }
        for s in &spans {
            a.free_span_dirty(*s);
        }
        a.purge_dirty();
        assert_eq!(a.committed_pages(), 0);
        assert_eq!(counters.snapshot().pages_purged, 6);
        // The spans must be reusable as clean afterwards.
        let (s, src) = a.alloc_span(2).unwrap();
        assert_eq!(src, SpanSource::Clean);
        assert!(s.offset < 6);
    }

    #[test]
    fn remap_alias_and_restore_identity() {
        let mut a = arena(64);
        let (s1, _) = a.alloc_span(1).unwrap();
        let (s2, _) = a.alloc_span(1).unwrap();
        let p1 = a.addr_of_page(s1.offset) as *mut u8;
        let p2 = a.addr_of_page(s2.offset) as *mut u8;
        unsafe {
            *p1 = 0xAA;
            *p2 = 0xBB;
            a.remap_alias(s2, s1).unwrap();
            assert_eq!(*p2, 0xAA, "alias reads s1's physical page");
            *p2 = 0xCC;
            assert_eq!(*p1, 0xCC, "write through alias visible at s1");
            a.restore_identity(s2).unwrap();
            assert_eq!(*p2, 0xBB, "identity restored, original data intact");
        }
    }

    #[test]
    fn release_physical_uncommits() {
        let mut a = arena(64);
        let (s, _) = a.alloc_span(4).unwrap();
        let addr = a.addr_of_page(s.offset) as *mut u8;
        unsafe {
            std::ptr::write_bytes(addr, 0x55, s.byte_len());
        }
        assert_eq!(a.committed_pages(), 4);
        a.release_physical(s);
        assert_eq!(a.committed_pages(), 0);
        // Access after release must not fault regardless of strategy.
        unsafe {
            let v = *addr;
            assert!(v == 0 || v == 0x55);
        }
    }

    #[test]
    fn protect_roundtrip() {
        let mut a = arena(16);
        let (s, _) = a.alloc_span(1).unwrap();
        let p = a.addr_of_page(s.offset) as *mut u8;
        unsafe { *p = 1 };
        a.protect_span(s);
        unsafe { assert_eq!(*p, 1) };
        a.unprotect_span(s);
        unsafe { *p = 2 };
    }
}
