//! The meshable arena (§4.4.1), segmented: a table of independently
//! file-backed segments carved out of one contiguous virtual reservation.
//!
//! The arena reserves `max_heap_bytes` of virtual address space once
//! (`PROT_NONE`, uncommitted) and maps **segments** — each backed by its
//! own memory file ([`crate::sys::MemFile`]) — into that window on demand:
//! the initial segment at construction, further segments whenever span
//! allocation misses every existing segment ("grow on miss"). Because the
//! reservation is contiguous, pointer→page arithmetic stays a single
//! subtraction and the lock-free page map is oblivious to growth; only
//! *file* offsets are per-segment. Within a segment, virtual page *i*
//! initially maps file page *i − segment start* (the *identity* mapping);
//! meshing retargets a virtual span at any segment's file range, and the
//! arena restores identities when meshed MiniHeaps die.
//!
//! Freed spans are kept per segment in two sets of bins, exactly as
//! §4.4.1:
//!
//! * **dirty** — recently freed, physical pages still committed; preferred
//!   for reuse because they are hot and reclamation is expensive.
//! * **clean** — released to the OS (demand-zero on next touch under
//!   punch-hole; possibly stale under the `MADV_DONTNEED` fallback — the
//!   allocator never assumes zeroed spans).
//!
//! Dirty pages are released en masse once they exceed the configured
//! threshold (64 MB in the paper) or whenever meshing runs. A purge that
//! leaves a non-initial segment with no outstanding and no dirty pages
//! makes it **retirable**: the segment is unmapped back to the reserved
//! state, its file is closed (returning the backing to the OS wholesale),
//! and its page range becomes reusable by future segments. Allocation
//! fails — with [`MeshError::ArenaExhausted`] — only once the configured
//! hard cap itself has no room left.
//!
//! The page→MiniHeap table used for constant-time pointer lookup on free
//! (§4.4.4) lives in [`crate::page_map`] — it is lock-free and shared by
//! every shard, while the arena (including the segment table) sits behind
//! the sharded heap's leaf lock (see DESIGN.md). The arena keeps the
//! committed-page accounting that serves as the physical-footprint metric.

use crate::barrier::BarrierGuard;
use crate::config::MeshConfig;
use crate::error::MeshError;
use crate::page_map::PageMap;
use crate::segment::{Segment, SegmentStats, SegmentTable};
use crate::span::Span;
use crate::stats::Counters;
use crate::sys::{self, MemFile, ReleaseStrategy, PAGE_SIZE};
use crate::telemetry::TimedOp;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Where a span handed out by [`Arena::alloc_span`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSource {
    /// Fresh, never-used pages from a segment's bump frontier.
    Fresh,
    /// Reused dirty pages (still committed, contents stale).
    Dirty,
    /// Reused clean pages (released to the OS since last use).
    Clean,
}

/// The meshable arena. All methods require external synchronization (the
/// sharded heap's arena leaf lock); the arena itself performs no locking.
#[derive(Debug)]
pub struct Arena {
    base: *mut u8,
    /// Total reservation length in pages: the hard cap.
    reserved_pages: u32,
    strategy: ReleaseStrategy,
    table: SegmentTable,
    /// Preferred size of growth segments, in pages.
    segment_pages: u32,
    /// Dirty pages across all segments (threshold accounting).
    dirty_pages: usize,
    committed_pages: usize,
    max_dirty_pages: usize,
    barrier: Option<BarrierGuard>,
    counters: Arc<Counters>,
}

// SAFETY: the raw base pointer refers to a reservation owned by the arena;
// the arena is only ever used under the sharded heap's arena lock.
unsafe impl Send for Arena {}

impl Arena {
    /// Creates an arena per `config`: reserves `max_heap_bytes` of virtual
    /// space, maps the initial segment, and registers the reservation with
    /// the write-barrier fault handler when `config.write_barrier` is set.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ArenaCreation`]/[`MeshError::Map`] if the
    /// backing file or mappings cannot be created.
    pub fn new(config: &MeshConfig, counters: Arc<Counters>) -> Result<Arena, MeshError> {
        let cap_pages = config.arena_pages() as u32;
        let cap_bytes = cap_pages as usize * PAGE_SIZE;
        let base = sys::reserve_region(cap_bytes).map_err(MeshError::Map)?;
        let barrier = if config.write_barrier {
            BarrierGuard::register(base as usize, cap_bytes)
        } else {
            None
        };
        let mut arena = Arena {
            base,
            reserved_pages: cap_pages,
            strategy: ReleaseStrategy::Nop,
            table: SegmentTable::new(cap_pages),
            segment_pages: (config.segment_pages() as u32).min(cap_pages),
            dirty_pages: 0,
            committed_pages: 0,
            max_dirty_pages: config.max_dirty_bytes / PAGE_SIZE,
            barrier,
            counters,
        };
        // The initial segment (id 0) is mapped eagerly and never retired.
        let initial_pages = (config.initial_segment_pages() as u32).min(cap_pages);
        let idx = arena.grow_exact(initial_pages, initial_pages)?;
        let seg = arena.table.get(idx);
        arena.strategy = ReleaseStrategy::detect(seg.file(), base);
        Ok(arena)
    }

    /// Base address of the arena reservation.
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.base as usize
    }

    /// Total reserved capacity in pages (the hard cap).
    #[inline]
    pub fn capacity_pages(&self) -> u32 {
        self.reserved_pages
    }

    /// Pages currently committed (the physical footprint).
    #[inline]
    pub fn committed_pages(&self) -> usize {
        self.committed_pages
    }

    /// Pages currently mapped to segment files (the virtual footprint of
    /// active segments; committed ≤ mapped ≤ capacity).
    #[inline]
    pub fn mapped_pages(&self) -> usize {
        self.table.mapped_pages()
    }

    /// Number of active (mapped) segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.table.len()
    }

    /// Segments ever created over this arena's lifetime.
    #[inline]
    pub fn segments_created(&self) -> u64 {
        self.table.ids_created()
    }

    /// The active release strategy (diagnostic).
    #[inline]
    pub fn release_strategy(&self) -> ReleaseStrategy {
        self.strategy
    }

    /// The write-barrier guard, if registered.
    #[inline]
    pub(crate) fn barrier(&self) -> Option<&BarrierGuard> {
        self.barrier.as_ref()
    }

    /// Address of arena page `page`.
    #[inline]
    pub fn addr_of_page(&self, page: u32) -> usize {
        debug_assert!(page < self.reserved_pages);
        self.base as usize + page as usize * PAGE_SIZE
    }

    /// Arena page containing `addr`, or `None` if outside the reservation.
    #[inline]
    pub fn page_of_addr(&self, addr: usize) -> Option<u32> {
        let base = self.base as usize;
        if addr < base {
            return None;
        }
        let page = (addr - base) / PAGE_SIZE;
        if page < self.reserved_pages as usize {
            Some(page as u32)
        } else {
            None
        }
    }

    /// Per-segment accounting snapshots, in address order.
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        self.table
            .iter()
            .map(|seg| seg.stats(seg.id() != 0 && seg.is_empty_of_live_data()))
            .collect()
    }

    fn set_committed(&mut self, pages: usize) {
        self.committed_pages = pages;
        self.counters.set_committed(pages);
    }

    fn seg_index_of(&self, span: Span) -> usize {
        let idx = self
            .table
            .index_of_page(span.offset)
            .expect("span belongs to no active segment");
        debug_assert!(
            span.end() <= self.table.get(idx).end(),
            "span {span} crosses a segment boundary"
        );
        idx
    }

    /// Hands out a span of `pages` pages, preferring dirty, then clean,
    /// then fresh pages (§4.4.1) from any active segment; when every
    /// segment misses, a new segment is mapped on demand ("grow on miss").
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ArenaExhausted`] when the hard cap has no room
    /// for the request, or [`MeshError::ArenaCreation`]/[`MeshError::Map`]
    /// if the OS refuses the new segment's file or mapping.
    pub fn alloc_span(&mut self, pages: u32) -> Result<(Span, SpanSource), MeshError> {
        assert!(pages > 0);
        // 1. Dirty reuse: exact length only (dirty spans are transient).
        for seg in self.table.iter_mut() {
            if let Some(offset) = seg.take_dirty_exact(pages) {
                self.dirty_pages -= pages as usize;
                // Already committed; no accounting change.
                return Ok((Span::new(offset, pages), SpanSource::Dirty));
            }
        }
        // 2. Clean reuse: smallest clean span across all segments that
        //    fits, splitting the rest back into its segment's bins.
        let mut best: Option<(usize, u32)> = None;
        for (idx, seg) in self.table.iter().enumerate() {
            if let Some(len) = seg.smallest_clean_at_least(pages) {
                if best.is_none_or(|(_, best_len)| len < best_len) {
                    best = Some((idx, len));
                }
            }
        }
        if let Some((idx, len)) = best {
            let span = self.table.get_mut(idx).take_clean(len, pages);
            self.set_committed(self.committed_pages + pages as usize);
            return Ok((span, SpanSource::Clean));
        }
        // 3. Fresh pages from the first segment with frontier room.
        let mut fresh = None;
        for seg in self.table.iter_mut() {
            if let Some(offset) = seg.take_fresh(pages) {
                fresh = Some(offset);
                break;
            }
        }
        if let Some(offset) = fresh {
            self.set_committed(self.committed_pages + pages as usize);
            return Ok((Span::new(offset, pages), SpanSource::Fresh));
        }
        // 4. Grow on miss: map a new segment and carve from it.
        let idx = self.grow(pages)?;
        let offset = self
            .table
            .get_mut(idx)
            .take_fresh(pages)
            .expect("fresh segment sized for the request");
        self.set_committed(self.committed_pages + pages as usize);
        Ok((Span::new(offset, pages), SpanSource::Fresh))
    }

    /// Maps a new segment able to serve a `min_pages`-page span, preferring
    /// the configured segment size. Returns its table index.
    fn grow(&mut self, min_pages: u32) -> Result<usize, MeshError> {
        self.grow_exact(min_pages.max(self.segment_pages), min_pages)
    }

    fn grow_exact(&mut self, desired: u32, min_pages: u32) -> Result<usize, MeshError> {
        let t0 = Instant::now();
        let Some((start, len)) = self.table.take_range(desired, min_pages) else {
            return Err(MeshError::ArenaExhausted {
                requested_pages: min_pages as usize,
                capacity_pages: self.reserved_pages as usize,
            });
        };
        let bytes = len as usize * PAGE_SIZE;
        let file = match MemFile::create(bytes) {
            Ok(file) => file,
            Err(e) => {
                self.table.return_range(start, len);
                return Err(MeshError::ArenaCreation(e));
            }
        };
        let addr = (self.base as usize + start as usize * PAGE_SIZE) as *mut u8;
        if let Err(e) = unsafe { sys::map_file_fixed(&file, addr) } {
            self.table.return_range(start, len);
            return Err(MeshError::Map(e));
        }
        let id = self.table.allocate_id();
        let idx = self.table.insert(Segment::new(id, start, len, file));
        self.counters.segments_created.fetch_add(1, Ordering::Relaxed);
        self.counters
            .active_segments
            .store(self.table.len(), Ordering::Relaxed);
        self.counters
            .mapped_pages
            .store(self.table.mapped_pages(), Ordering::Relaxed);
        self.counters
            .record_slow(TimedOp::SegmentGrow, t0, len as u64);
        Ok(idx)
    }

    /// Unmaps every non-initial segment whose pages are all clean: virtual
    /// range back to the reservation, file backing back to the OS, page
    /// range back to the free ledger. Returns the number retired.
    ///
    /// `page_map` is consulted only to assert (debug builds) that retired
    /// ranges hold no routed pages — an outstanding entry would mean a
    /// live span was lost.
    pub(crate) fn retire_empty_segments(&mut self, page_map: &PageMap) -> usize {
        let t0 = Instant::now();
        let mut retired = 0;
        let mut idx = 0;
        while idx < self.table.len() {
            let seg = self.table.get(idx);
            if seg.id() == 0 || !seg.is_empty_of_live_data() {
                idx += 1;
                continue;
            }
            debug_assert_eq!(seg.committed_pages(), 0, "clean segment holds committed pages");
            debug_assert!(
                page_map.range_is_clear(seg.start(), seg.pages()),
                "retiring segment {} with routed pages",
                seg.id()
            );
            let seg = self.table.remove(idx);
            let addr = (self.base as usize + seg.start() as usize * PAGE_SIZE) as *mut u8;
            // SAFETY: the range lies inside our reservation and holds no
            // live spans (outstanding == dirty == 0).
            unsafe {
                sys::unmap_to_reserved(addr, seg.pages() as usize * PAGE_SIZE)
                    .expect("segment retirement remap failed");
            }
            self.table.return_range(seg.start(), seg.pages());
            // Dropping `seg` closes its MemFile, releasing the backing.
            drop(seg);
            retired += 1;
        }
        if retired > 0 {
            self.counters
                .segments_retired
                .fetch_add(retired as u64, Ordering::Relaxed);
            self.counters
                .active_segments
                .store(self.table.len(), Ordering::Relaxed);
            self.counters
                .mapped_pages
                .store(self.table.mapped_pages(), Ordering::Relaxed);
            self.counters
                .record_slow(TimedOp::SegmentRetire, t0, retired as u64);
        }
        retired as usize
    }

    /// Returns a dead span to its segment's dirty bins; triggers a purge
    /// when the dirty threshold is exceeded.
    pub fn free_span_dirty(&mut self, span: Span) {
        let idx = self.seg_index_of(span);
        self.table.get_mut(idx).free_dirty(span);
        self.dirty_pages += span.pages as usize;
        if self.dirty_pages > self.max_dirty_pages {
            self.purge_dirty();
        }
    }

    /// Returns a span whose physical pages were already released (e.g. the
    /// source of a mesh) straight to its segment's clean bins. No
    /// accounting change: the pages were uncommitted at release time.
    pub fn free_span_clean(&mut self, span: Span) {
        let idx = self.seg_index_of(span);
        self.table.get_mut(idx).free_clean(span);
    }

    /// Releases a dead span's physical pages immediately and files it
    /// under clean (used for large objects, §4).
    pub fn release_span(&mut self, span: Span) {
        self.release_physical(span);
        self.free_span_clean(span);
    }

    /// Releases the physical file range behind `span`. The span's identity
    /// mapping must still be intact (guaranteed for any never-meshed span
    /// and for mesh sources before their remap).
    pub fn release_physical(&mut self, span: Span) {
        let t0 = Instant::now();
        let idx = self.seg_index_of(span);
        let seg = self.table.get_mut(idx);
        let file_offset = seg.file_offset_of_page(span.offset);
        unsafe {
            self.strategy.release(
                seg.file(),
                (self.base as usize + span.byte_offset()) as *mut u8,
                span.byte_len(),
                file_offset,
            );
        }
        seg.note_release(span.pages as usize);
        self.set_committed(self.committed_pages - span.pages as usize);
        self.counters
            .record_slow(TimedOp::Madvise, t0, span.pages as u64);
    }

    /// Releases the file range behind a mesh source *after* its virtual
    /// spans were retargeted (so no identity mapping of the range exists).
    ///
    /// Punch-hole releases by file offset directly; `MADV_REMOVE` goes
    /// through a scratch mapping; the `MADV_DONTNEED` fallback cannot work
    /// without a resident mapping, so callers using that strategy must
    /// release *before* the remap via [`Arena::release_physical`] — this
    /// method then only adjusts accounting (as does `Nop`).
    pub fn release_after_remap(&mut self, span: Span) {
        let t0 = Instant::now();
        let idx = self.seg_index_of(span);
        let seg = self.table.get_mut(idx);
        let file_offset = seg.file_offset_of_page(span.offset);
        match self.strategy {
            ReleaseStrategy::PunchHole => unsafe {
                self.strategy.release(
                    seg.file(),
                    std::ptr::null_mut(), // unused by punch-hole
                    span.byte_len(),
                    file_offset,
                );
            },
            ReleaseStrategy::MadviseRemove => unsafe {
                if let Ok(scratch) = sys::map_range_shared(seg.file(), file_offset, span.byte_len())
                {
                    self.strategy
                        .release(seg.file(), scratch, span.byte_len(), file_offset);
                    sys::unmap(scratch, span.byte_len());
                }
            },
            ReleaseStrategy::MadviseDontNeed | ReleaseStrategy::Nop => {}
        }
        self.table.get_mut(idx).note_release(span.pages as usize);
        self.set_committed(self.committed_pages - span.pages as usize);
        self.counters
            .record_slow(TimedOp::Madvise, t0, span.pages as u64);
    }

    /// Releases every dirty span to the OS, moving them to the clean bins
    /// (§4.4.1: after 64 MB accumulate, or when meshing runs).
    ///
    /// Within each segment, adjacent dirty spans are coalesced into
    /// maximal contiguous runs and released with one kernel call per run
    /// (dirty spans always have their identity mapping, so virtual
    /// adjacency equals file adjacency); with thousands of spans dying
    /// together this saves the same factor in syscalls. Runs never cross
    /// segments — their file ranges live in different files.
    pub fn purge_dirty(&mut self) {
        if self.dirty_pages == 0 {
            return;
        }
        let purged = self.dirty_pages;
        for idx in 0..self.table.len() {
            let mut spans = self.table.get_mut(idx).take_all_dirty();
            if spans.is_empty() {
                continue;
            }
            spans.sort_unstable_by_key(|s| s.offset);
            let mut i = 0;
            while i < spans.len() {
                let run_start = spans[i].offset;
                let mut run_end = spans[i].end();
                let mut j = i + 1;
                while j < spans.len() && spans[j].offset == run_end {
                    run_end = spans[j].end();
                    j += 1;
                }
                self.release_physical(Span::new(run_start, run_end - run_start));
                i = j;
            }
            for span in spans {
                self.table.get_mut(idx).park_clean(span);
            }
        }
        self.dirty_pages = 0;
        self.counters
            .pages_purged
            .fetch_add(purged as u64, Ordering::Relaxed);
        self.counters.dirty_purges.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently sitting in the dirty bins.
    pub fn dirty_bytes(&self) -> usize {
        self.dirty_pages * PAGE_SIZE
    }

    /// Re-backs every segment with a private copy of its file and restores
    /// the *identity* mapping over each segment's range — the arena half of
    /// fork privatization. A forked child shares `MAP_SHARED` file pages
    /// with its parent, so without this the two processes would corrupt
    /// each other's heap the moment either writes. Sparse copy keeps the
    /// child's physical footprint equal to the parent's committed pages.
    ///
    /// Mesh *aliases* (virtual spans retargeted at another span's file
    /// range) are clobbered by the identity remap; the caller must
    /// re-establish them from the MiniHeap tables afterwards — see
    /// `GlobalHeap::privatize_after_fork`.
    ///
    /// # Errors
    ///
    /// Returns the first file-creation/copy/remap error; segments already
    /// privatized stay privatized (re-running is safe).
    pub(crate) fn privatize_segments(&mut self) -> std::io::Result<()> {
        for idx in 0..self.table.len() {
            let base = self.base;
            let seg = self.table.get_mut(idx);
            let fresh = MemFile::create(seg.file().len())?;
            sys::copy_file_sparse(seg.file(), &fresh)?;
            let addr = (base as usize + seg.start() as usize * PAGE_SIZE) as *mut u8;
            // SAFETY: the range is this segment's slice of our reservation.
            unsafe { sys::map_file_fixed(&fresh, addr)? };
            // The old (shared) file closes here; the parent keeps its own
            // descriptor and mappings, so only the child lets go.
            drop(seg.replace_file(fresh));
        }
        Ok(())
    }

    /// Pages handed out (or aliased) from the segment that owns `span`:
    /// the segment-aware meshing heuristic prefers evacuating spans out of
    /// emptier segments so those segments drain toward retirement.
    pub(crate) fn segment_outstanding_of(&self, span: Span) -> usize {
        self.table
            .seg_of_page(span.offset)
            .map_or(usize::MAX, |seg| seg.outstanding_pages())
    }

    // ----- meshing primitives -------------------------------------------

    /// Remaps virtual span `vspan` to alias the file range of `target`
    /// (which must have equal length): the §4.5.1 page-table update. The
    /// two spans may live in different segments — the remap simply targets
    /// the other segment's file.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Map`] if the kernel rejects the remap; the
    /// prior mapping is unchanged in that case.
    pub fn remap_alias(&mut self, vspan: Span, target: Span) -> Result<(), MeshError> {
        assert_eq!(vspan.pages, target.pages, "mesh of unequal spans");
        let tidx = self.seg_index_of(target);
        let tseg = self.table.get(tidx);
        let file_offset = tseg.file_offset_of_page(target.offset);
        unsafe {
            sys::remap_fixed(
                self.addr_of_page(vspan.offset) as *mut u8,
                vspan.byte_len(),
                tseg.file(),
                file_offset,
            )
            .map_err(MeshError::Map)
        }
    }

    /// Restores the identity mapping of `vspan` (virtual page *i* → file
    /// page *i − segment start* of its own segment), used when meshed
    /// MiniHeaps die.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Map`] if the kernel rejects the remap.
    pub fn restore_identity(&mut self, vspan: Span) -> Result<(), MeshError> {
        self.remap_alias(vspan, vspan)
    }

    /// Write-protects `span` (the §4.5.2 barrier's mprotect step).
    pub fn protect_span(&mut self, span: Span) {
        unsafe {
            // mprotect on an established mapping only fails for invalid
            // arguments, which would be an internal bug.
            sys::protect_read(self.addr_of_page(span.offset) as *mut u8, span.byte_len())
                .expect("mprotect(PROT_READ) failed on arena span");
        }
    }

    /// Restores write access to `span`.
    pub fn unprotect_span(&mut self, span: Span) {
        unsafe {
            sys::protect_read_write(self.addr_of_page(span.offset) as *mut u8, span.byte_len())
                .expect("mprotect(PROT_READ|WRITE) failed on arena span");
        }
    }

}

impl Drop for Arena {
    fn drop(&mut self) {
        // Deregister the fault handler range before the mapping disappears.
        self.barrier = None;
        // One munmap covers the reservation and every segment mapped into
        // it; the segments' MemFiles close as the table drops.
        unsafe { sys::unmap(self.base, self.reserved_pages as usize * PAGE_SIZE) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(pages: usize) -> Arena {
        let config = MeshConfig::default()
            .arena_bytes(pages * PAGE_SIZE)
            .write_barrier(false);
        Arena::new(&config, Arc::new(Counters::default())).unwrap()
    }

    #[test]
    fn fresh_allocation_bumps_and_commits() {
        let mut a = arena(64);
        let (s1, src1) = a.alloc_span(2).unwrap();
        let (s2, src2) = a.alloc_span(3).unwrap();
        assert_eq!(src1, SpanSource::Fresh);
        assert_eq!(src2, SpanSource::Fresh);
        assert_eq!(s1, Span::new(0, 2));
        assert_eq!(s2, Span::new(2, 3));
        assert_eq!(a.committed_pages(), 5);
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = arena(32);
        assert!(a.alloc_span(32).is_ok());
        match a.alloc_span(1) {
            Err(MeshError::ArenaExhausted { requested_pages, capacity_pages }) => {
                assert_eq!(requested_pages, 1);
                assert_eq!(capacity_pages, 32);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn dirty_reuse_prefers_hot_spans() {
        let mut a = arena(64);
        let (s, _) = a.alloc_span(2).unwrap();
        a.free_span_dirty(s);
        assert_eq!(a.committed_pages(), 2, "dirty spans stay committed");
        let (s2, src) = a.alloc_span(2).unwrap();
        assert_eq!(src, SpanSource::Dirty);
        assert_eq!(s2, s, "dirty span reused");
        assert_eq!(a.committed_pages(), 2);
    }

    #[test]
    fn clean_reuse_recommits_and_splits() {
        let mut a = arena(64);
        let (s, _) = a.alloc_span(4).unwrap();
        a.release_span(s);
        assert_eq!(a.committed_pages(), 0);
        let (head, src) = a.alloc_span(1).unwrap();
        assert_eq!(src, SpanSource::Clean);
        assert_eq!(head, Span::new(0, 1));
        assert_eq!(a.committed_pages(), 1);
        // The 3-page tail is still clean.
        let (tail, src) = a.alloc_span(3).unwrap();
        assert_eq!(src, SpanSource::Clean);
        assert_eq!(tail, Span::new(1, 3));
    }

    #[test]
    fn purge_threshold_releases_dirty() {
        let config = MeshConfig::default()
            .arena_bytes(256 * PAGE_SIZE)
            .max_dirty_bytes(4 * PAGE_SIZE)
            .write_barrier(false);
        let counters = Arc::new(Counters::default());
        let mut a = Arena::new(&config, Arc::clone(&counters)).unwrap();
        let spans: Vec<Span> = (0..3).map(|_| a.alloc_span(2).unwrap().0).collect();
        assert_eq!(a.committed_pages(), 6);
        a.free_span_dirty(spans[0]); // dirty: 2 pages
        a.free_span_dirty(spans[1]); // dirty: 4 pages — at threshold
        assert_eq!(a.dirty_bytes(), 4 * PAGE_SIZE);
        a.free_span_dirty(spans[2]); // exceeds → purge all
        assert_eq!(a.dirty_bytes(), 0);
        assert_eq!(a.committed_pages(), 0);
        assert_eq!(
            counters.snapshot().dirty_purges, 1,
            "exactly one purge event"
        );
        assert_eq!(
            counters.snapshot().pages_purged, 6,
            "all six dirty pages counted"
        );
    }

    #[test]
    fn purge_coalesces_adjacent_spans_into_runs() {
        // Three adjacent 2-page spans freed dirty and purged together:
        // accounting must match regardless of run coalescing.
        let config = MeshConfig::default()
            .arena_bytes(256 * PAGE_SIZE)
            .write_barrier(false);
        let counters = Arc::new(Counters::default());
        let mut a = Arena::new(&config, Arc::clone(&counters)).unwrap();
        let spans: Vec<Span> = (0..3).map(|_| a.alloc_span(2).unwrap().0).collect();
        // Touch the pages so release really has something to drop.
        for s in &spans {
            unsafe {
                std::ptr::write_bytes(a.addr_of_page(s.offset) as *mut u8, 1, s.byte_len());
            }
        }
        for s in &spans {
            a.free_span_dirty(*s);
        }
        a.purge_dirty();
        assert_eq!(a.committed_pages(), 0);
        assert_eq!(counters.snapshot().pages_purged, 6);
        // The spans must be reusable as clean afterwards.
        let (s, src) = a.alloc_span(2).unwrap();
        assert_eq!(src, SpanSource::Clean);
        assert!(s.offset < 6);
    }

    #[test]
    fn remap_alias_and_restore_identity() {
        let mut a = arena(64);
        let (s1, _) = a.alloc_span(1).unwrap();
        let (s2, _) = a.alloc_span(1).unwrap();
        let p1 = a.addr_of_page(s1.offset) as *mut u8;
        let p2 = a.addr_of_page(s2.offset) as *mut u8;
        unsafe {
            *p1 = 0xAA;
            *p2 = 0xBB;
            a.remap_alias(s2, s1).unwrap();
            assert_eq!(*p2, 0xAA, "alias reads s1's physical page");
            *p2 = 0xCC;
            assert_eq!(*p1, 0xCC, "write through alias visible at s1");
            a.restore_identity(s2).unwrap();
            assert_eq!(*p2, 0xBB, "identity restored, original data intact");
        }
    }

    #[test]
    fn release_physical_uncommits() {
        let mut a = arena(64);
        let (s, _) = a.alloc_span(4).unwrap();
        let addr = a.addr_of_page(s.offset) as *mut u8;
        unsafe {
            std::ptr::write_bytes(addr, 0x55, s.byte_len());
        }
        assert_eq!(a.committed_pages(), 4);
        a.release_physical(s);
        assert_eq!(a.committed_pages(), 0);
        // Access after release must not fault regardless of strategy.
        unsafe {
            let v = *addr;
            assert!(v == 0 || v == 0x55);
        }
    }

    #[test]
    fn protect_roundtrip() {
        let mut a = arena(16);
        let (s, _) = a.alloc_span(1).unwrap();
        let p = a.addr_of_page(s.offset) as *mut u8;
        unsafe { *p = 1 };
        a.protect_span(s);
        unsafe { assert_eq!(*p, 1) };
        a.unprotect_span(s);
        unsafe { *p = 2 };
    }

    // ----- segmented growth and retirement ------------------------------

    /// Arena with a small initial segment and small growth segments under
    /// a larger cap, for exercising growth.
    fn segmented(initial: usize, seg: usize, cap: usize) -> (Arena, Arc<Counters>) {
        let config = MeshConfig::default()
            .max_heap_bytes(cap * PAGE_SIZE)
            .initial_segment_bytes(initial * PAGE_SIZE)
            .segment_bytes(seg * PAGE_SIZE)
            .write_barrier(false);
        let counters = Arc::new(Counters::default());
        let a = Arena::new(&config, Arc::clone(&counters)).unwrap();
        (a, counters)
    }

    #[test]
    fn grow_on_miss_maps_new_segments() {
        let (mut a, counters) = segmented(32, 32, 256);
        assert_eq!(a.segment_count(), 1);
        assert_eq!(a.mapped_pages(), 32);
        // Fill the initial segment, then one more span forces growth.
        let (s1, _) = a.alloc_span(32).unwrap();
        let (s2, src) = a.alloc_span(8).unwrap();
        assert_eq!(src, SpanSource::Fresh);
        assert_eq!(a.segment_count(), 2);
        assert_eq!(a.mapped_pages(), 64);
        assert_eq!(s2.offset, 32, "second segment starts past the first");
        // Both spans are writable through the contiguous reservation.
        unsafe {
            std::ptr::write_bytes(a.addr_of_page(s1.offset) as *mut u8, 1, s1.byte_len());
            std::ptr::write_bytes(a.addr_of_page(s2.offset) as *mut u8, 2, s2.byte_len());
        }
        assert_eq!(counters.snapshot().segments_created, 2);
    }

    #[test]
    fn oversized_request_gets_dedicated_segment() {
        let (mut a, _) = segmented(32, 32, 4096);
        // A span bigger than the segment size: the growth segment is sized
        // to the request.
        let (big, _) = a.alloc_span(512).unwrap();
        assert_eq!(big.pages, 512);
        assert_eq!(a.segment_count(), 2);
        assert_eq!(a.mapped_pages(), 32 + 512);
    }

    #[test]
    fn retirement_unmaps_and_recycles_ranges() {
        let (mut a, counters) = segmented(32, 32, 4096);
        let pm = PageMap::new(4096);
        let (s1, _) = a.alloc_span(32).unwrap();
        let (s2, _) = a.alloc_span(32).unwrap(); // second segment
        assert_eq!(a.segment_count(), 2);
        unsafe {
            std::ptr::write_bytes(a.addr_of_page(s2.offset) as *mut u8, 9, s2.byte_len());
        }
        // Free the second segment's span dirty; purge makes it all clean;
        // retirement unmaps the segment and recycles its page range.
        a.free_span_dirty(s2);
        a.purge_dirty();
        assert_eq!(a.retire_empty_segments(&pm), 1);
        assert_eq!(a.segment_count(), 1);
        assert_eq!(a.mapped_pages(), 32);
        let snap = counters.snapshot();
        assert_eq!(snap.segments_retired, 1);
        assert_eq!(snap.segment_count, 1);
        // The initial segment never retires, even when fully clean.
        a.free_span_dirty(s1);
        a.purge_dirty();
        assert_eq!(a.retire_empty_segments(&pm), 0);
        assert_eq!(a.segment_count(), 1);
        // Growth after retirement reuses the recycled range and keeps ids
        // monotonic.
        let (s3, _) = a.alloc_span(32).unwrap(); // initial (clean reuse)
        let (s4, _) = a.alloc_span(32).unwrap(); // new segment in old range
        assert_eq!(s4.offset, 32, "retired range reused");
        assert_eq!(a.segments_created(), 3, "ids never reused");
        let _ = s3;
    }

    #[test]
    fn cross_segment_mesh_remap_and_identity_restore() {
        let (mut a, _) = segmented(32, 32, 256);
        let (s1, _) = a.alloc_span(32).unwrap(); // segment 0
        let (s2, _) = a.alloc_span(32).unwrap(); // segment 1
        let src = Span::new(s2.offset, 1);
        let dst = Span::new(s1.offset, 1);
        let p_src = a.addr_of_page(src.offset) as *mut u8;
        let p_dst = a.addr_of_page(dst.offset) as *mut u8;
        unsafe {
            *p_dst = 0xD5;
            *p_src = 0x5D;
            // Alias a segment-1 virtual span onto segment 0's file.
            a.remap_alias(src, dst).unwrap();
            assert_eq!(*p_src, 0xD5, "alias reads the other segment's file");
            *p_src = 0x77;
            assert_eq!(*p_dst, 0x77, "write through cross-segment alias");
            a.restore_identity(src).unwrap();
            assert_eq!(*p_src, 0x5D, "identity back to segment 1's own file");
        }
    }

    #[test]
    fn privatize_segments_preserves_data_per_segment() {
        let (mut a, _) = segmented(32, 32, 256);
        let (s1, _) = a.alloc_span(4).unwrap(); // initial segment
        let (s2, _) = a.alloc_span(32).unwrap(); // forces a second segment
        let p1 = a.addr_of_page(s1.offset) as *mut u8;
        let p2 = a.addr_of_page(s2.offset) as *mut u8;
        unsafe {
            std::ptr::write_bytes(p1, 0x11, s1.byte_len());
            std::ptr::write_bytes(p2, 0x22, s2.byte_len());
        }
        assert_eq!(a.segment_count(), 2);
        a.privatize_segments().unwrap();
        unsafe {
            assert_eq!(*p1, 0x11, "segment 0 data survived the file swap");
            assert_eq!(*p1.add(s1.byte_len() - 1), 0x11);
            assert_eq!(*p2, 0x22, "segment 1 data survived the file swap");
            assert_eq!(*p2.add(s2.byte_len() - 1), 0x22);
            // Still writable through the fresh mappings.
            *p1 = 0x33;
            assert_eq!(*p1, 0x33);
        }
        assert_eq!(a.segment_count(), 2);
        assert_eq!(a.mapped_pages(), 64);
    }

    #[test]
    fn exhaustion_only_at_hard_cap() {
        let (mut a, _) = segmented(32, 32, 96);
        assert!(a.alloc_span(32).is_ok());
        assert!(a.alloc_span(32).is_ok());
        assert!(a.alloc_span(32).is_ok());
        assert_eq!(a.segment_count(), 3);
        match a.alloc_span(1) {
            Err(MeshError::ArenaExhausted { capacity_pages, .. }) => {
                assert_eq!(capacity_pages, 96)
            }
            other => panic!("expected cap exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn segment_stats_reflect_lifecycle() {
        let (mut a, _) = segmented(32, 32, 256);
        let (s1, _) = a.alloc_span(32).unwrap();
        let (s2, _) = a.alloc_span(4).unwrap();
        let stats = a.segment_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].id, 0);
        assert_eq!(stats[0].outstanding_pages, 32);
        assert!(!stats[0].retirable);
        assert_eq!(stats[1].outstanding_pages, 4);
        a.free_span_dirty(s2);
        let stats = a.segment_stats();
        assert_eq!(stats[1].dirty_pages, 4);
        assert!(!stats[1].retirable, "dirty pages block retirement");
        a.purge_dirty();
        let stats = a.segment_stats();
        assert_eq!(stats[1].clean_pages, 4);
        assert!(stats[1].retirable);
        let _ = s1;
    }
}
