//! Thin unsafe wrappers over the virtual-memory syscalls Mesh relies on
//! (§4.5.1): `memfd_create`, `mmap`, `mprotect`, `fallocate`, `madvise`.
//!
//! All policy lives above this layer; everything here is a direct, checked
//! syscall wrapper. The arena's backing store is a memory file — obtained
//! via `memfd_create`, falling back to an unlinked temporary file — so the
//! same file offset can be mapped at several virtual addresses, which is
//! the mechanism that makes meshing possible.
//!
//! ## Page release strategies
//!
//! The paper returns physical spans to the OS with
//! `fallocate(FALLOC_FL_PUNCH_HOLE)`. Not every kernel (notably the
//! sandboxed one used for CI here) supports punching holes in memfds, so
//! [`ReleaseStrategy::detect`] probes at arena construction and picks the
//! strongest supported primitive:
//!
//! 1. `fallocate(PUNCH_HOLE)` — frees the file pages; reads see zeros.
//! 2. `madvise(MADV_REMOVE)` — equivalent for tmpfs-backed mappings.
//! 3. `madvise(MADV_DONTNEED)` — releases the pages from the process RSS;
//!    on a `MAP_SHARED` mapping this preserves file contents (verified in
//!    the DESIGN.md experiments) so it is always safe, though the file
//!    pages themselves survive until reuse. RSS-equivalent to punch-hole.

use crate::ffi as libc;
use std::io;
use std::os::raw::{c_int, c_uint};

/// Hardware page size required by this allocator.
pub const PAGE_SIZE: usize = crate::size_classes::PAGE_SIZE;

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

/// An in-memory file backing a meshable arena (§4.5.1).
///
/// Created with `memfd_create` where available, else an unlinked temporary
/// file; either way it "only exists in memory or on swap".
#[derive(Debug)]
pub struct MemFile {
    fd: c_int,
    len: usize,
}

impl MemFile {
    /// Creates a memory file of `len` bytes (sparse).
    ///
    /// # Errors
    ///
    /// Returns an error if both `memfd_create` and the temp-file fallback
    /// fail, or if the file cannot be sized.
    pub fn create(len: usize) -> io::Result<MemFile> {
        let fd = unsafe {
            libc::syscall(
                libc::SYS_memfd_create,
                c"mesh-arena".as_ptr(),
                libc::MFD_CLOEXEC as c_uint,
            ) as c_int
        };
        let fd = if fd >= 0 { fd } else { Self::tmpfile_fd()? };
        if unsafe { libc::ftruncate(fd, len as libc::off_t) } != 0 {
            let e = last_err();
            unsafe { libc::close(fd) };
            return Err(e);
        }
        Ok(MemFile { fd, len })
    }

    /// Fallback: an unlinked file in `$TMPDIR`/`/tmp`.
    fn tmpfile_fd() -> io::Result<c_int> {
        let dir = std::env::var_os("TMPDIR")
            .unwrap_or_else(|| std::ffi::OsString::from("/tmp"));
        let template = format!(
            "{}/mesh-arena-XXXXXX\0",
            dir.to_string_lossy().trim_end_matches('/')
        );
        let mut buf: Vec<u8> = template.into_bytes();
        let fd = unsafe { libc::mkstemp(buf.as_mut_ptr() as *mut libc::c_char) };
        if fd < 0 {
            return Err(last_err());
        }
        // Unlink immediately: the file lives only as long as the fd.
        unsafe { libc::unlink(buf.as_ptr() as *const libc::c_char) };
        Ok(fd)
    }

    /// The raw file descriptor.
    #[inline]
    pub fn fd(&self) -> c_int {
        self.fd
    }

    /// The file length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file is zero-sized (never true for a live arena).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MemFile {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

/// Reserves `len` bytes of contiguous virtual address space without
/// committing any memory (`PROT_NONE`, `MAP_NORESERVE`). Segments of the
/// segmented arena are later mapped *into* this window with `MAP_FIXED`,
/// which keeps pointer→page arithmetic a single subtraction even though
/// the backing files come and go.
///
/// # Errors
///
/// Returns the `mmap` error on failure.
pub fn reserve_region(len: usize) -> io::Result<*mut u8> {
    let p = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            len,
            libc::PROT_NONE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
            -1,
            0,
        )
    };
    if p == libc::MAP_FAILED {
        Err(last_err())
    } else {
        Ok(p as *mut u8)
    }
}

/// Maps the whole of `file` read-write at exactly `addr` (which must lie
/// inside a region obtained from [`reserve_region`]): segment activation.
///
/// # Safety
///
/// `addr` must be page-aligned and `[addr, addr + file.len())` must lie
/// within a reservation owned by the caller with no live mapping the
/// caller still needs (`MAP_FIXED` replaces whatever is there).
///
/// # Errors
///
/// Returns the `mmap` error on failure (the prior mapping is untouched).
pub unsafe fn map_file_fixed(file: &MemFile, addr: *mut u8) -> io::Result<()> {
    let p = libc::mmap(
        addr as *mut libc::c_void,
        file.len(),
        libc::PROT_READ | libc::PROT_WRITE,
        libc::MAP_SHARED | libc::MAP_FIXED,
        file.fd(),
        0,
    );
    if p == libc::MAP_FAILED {
        Err(last_err())
    } else {
        debug_assert_eq!(p as *mut u8, addr);
        Ok(())
    }
}

/// Returns `[addr, addr+len)` to the reserved (inaccessible, uncommitted)
/// state: segment retirement. The file mapping previously there is
/// atomically replaced by a `PROT_NONE` reservation, so the virtual range
/// can be reused by a future segment.
///
/// # Safety
///
/// `addr`/`len` must denote a range inside a reservation owned by the
/// caller; nothing may access it afterwards until remapped.
pub unsafe fn unmap_to_reserved(addr: *mut u8, len: usize) -> io::Result<()> {
    let p = libc::mmap(
        addr as *mut libc::c_void,
        len,
        libc::PROT_NONE,
        libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | libc::MAP_FIXED,
        -1,
        0,
    );
    if p == libc::MAP_FAILED {
        Err(last_err())
    } else {
        Ok(())
    }
}

/// Maps the whole of `file` as one shared read-write region.
///
/// # Errors
///
/// Returns the `mmap` error on failure.
pub fn map_file_shared(file: &MemFile) -> io::Result<*mut u8> {
    let p = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            file.len(),
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED,
            file.fd(),
            0,
        )
    };
    if p == libc::MAP_FAILED {
        Err(last_err())
    } else {
        Ok(p as *mut u8)
    }
}

/// Maps `len` bytes of `file` starting at `offset` at a kernel-chosen
/// address (scratch mappings for post-remap page release).
///
/// # Errors
///
/// Returns the `mmap` error on failure.
pub fn map_range_shared(file: &MemFile, offset: usize, len: usize) -> io::Result<*mut u8> {
    let p = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED,
            file.fd(),
            offset as libc::off_t,
        )
    };
    if p == libc::MAP_FAILED {
        Err(last_err())
    } else {
        Ok(p as *mut u8)
    }
}

/// Unmaps a region previously mapped by this module.
///
/// # Safety
///
/// `addr`/`len` must denote a live mapping owned by the caller; nothing may
/// reference it afterwards.
pub unsafe fn unmap(addr: *mut u8, len: usize) {
    let rc = libc::munmap(addr as *mut libc::c_void, len);
    debug_assert_eq!(rc, 0, "munmap failed: {}", last_err());
}

/// Atomically replaces the mapping at `addr` so it aliases `file` at
/// `file_offset` — the core meshing primitive (§4.5.1). Exploits `mmap`'s
/// documented behaviour that `MAP_FIXED` replaces any existing mapping in
/// the range atomically with respect to concurrent faults.
///
/// # Safety
///
/// `addr` must lie within the arena mapping of `file`, be page-aligned, and
/// `[file_offset, file_offset + len)` must be within the file.
///
/// # Errors
///
/// Returns the `mmap` error on failure (the prior mapping is untouched in
/// that case).
pub unsafe fn remap_fixed(
    addr: *mut u8,
    len: usize,
    file: &MemFile,
    file_offset: usize,
) -> io::Result<()> {
    let p = libc::mmap(
        addr as *mut libc::c_void,
        len,
        libc::PROT_READ | libc::PROT_WRITE,
        libc::MAP_SHARED | libc::MAP_FIXED,
        file.fd(),
        file_offset as libc::off_t,
    );
    if p == libc::MAP_FAILED {
        Err(last_err())
    } else {
        debug_assert_eq!(p as *mut u8, addr);
        Ok(())
    }
}

/// Marks `[addr, addr+len)` read-only (the meshing write barrier, §4.5.2).
///
/// # Safety
///
/// `addr`/`len` must denote pages inside a live mapping owned by the caller.
pub unsafe fn protect_read(addr: *mut u8, len: usize) -> io::Result<()> {
    if libc::mprotect(addr as *mut libc::c_void, len, libc::PROT_READ) != 0 {
        Err(last_err())
    } else {
        Ok(())
    }
}

/// Marks `[addr, addr+len)` inaccessible (`PROT_NONE`) — the hardened
/// mode's trailing guard page on large objects: any touch faults
/// deterministically instead of corrupting the neighbour.
///
/// # Safety
///
/// `addr`/`len` must denote pages inside a live mapping owned by the caller.
pub unsafe fn protect_none(addr: *mut u8, len: usize) -> io::Result<()> {
    if libc::mprotect(addr as *mut libc::c_void, len, libc::PROT_NONE) != 0 {
        Err(last_err())
    } else {
        Ok(())
    }
}

/// Restores read-write access to `[addr, addr+len)`.
///
/// # Safety
///
/// `addr`/`len` must denote pages inside a live mapping owned by the caller.
pub unsafe fn protect_read_write(addr: *mut u8, len: usize) -> io::Result<()> {
    let prot = libc::PROT_READ | libc::PROT_WRITE;
    if libc::mprotect(addr as *mut libc::c_void, len, prot) != 0 {
        Err(last_err())
    } else {
        Ok(())
    }
}

/// Copies `src`'s contents into `dst` (equal-length memory files),
/// preserving sparseness: only data extents — probed with
/// `lseek(SEEK_DATA/SEEK_HOLE)` — are copied, so holes (never-touched or
/// punched pages) stay holes and the copy commits no more physical memory
/// than `src` held. Kernels whose tmpfs lacks `SEEK_DATA` fall back to a
/// whole-file copy. Returns the number of bytes copied.
///
/// This is the heavy half of fork privatization: a forked child re-backs
/// every segment with a fresh file so parent and child stop sharing
/// `MAP_SHARED` pages.
///
/// # Errors
///
/// Returns the first `lseek`/`mmap` error encountered.
pub fn copy_file_sparse(src: &MemFile, dst: &MemFile) -> io::Result<usize> {
    use crate::ffi as libc;
    debug_assert_eq!(src.len(), dst.len());
    let len = src.len();
    let mut copied = 0usize;
    let mut pos = 0usize;
    while pos < len {
        let data = unsafe { libc::lseek(src.fd(), pos as libc::off_t, libc::SEEK_DATA) };
        if data < 0 {
            match libc::errno() {
                libc::ENXIO => break, // no data past `pos`
                _ if pos == 0 && copied == 0 => {
                    // SEEK_DATA unsupported here: degrade to a full copy.
                    copy_file_range_mapped(src, dst, 0, len)?;
                    return Ok(len);
                }
                _ => return Err(last_err()),
            }
        }
        let data = (data as usize).min(len);
        let hole = unsafe { libc::lseek(src.fd(), data as libc::off_t, libc::SEEK_HOLE) };
        let end = if hole < 0 { len } else { (hole as usize).min(len) };
        if end > data {
            copy_file_range_mapped(src, dst, data, end - data)?;
            copied += end - data;
        }
        pos = end.max(data + 1);
    }
    Ok(copied)
}

/// Copies `len` bytes at `offset` from `src` to `dst` through transient
/// shared mappings (extents from SEEK_DATA/SEEK_HOLE are page-granular on
/// tmpfs, and `MemFile` lengths are whole pages).
fn copy_file_range_mapped(
    src: &MemFile,
    dst: &MemFile,
    offset: usize,
    len: usize,
) -> io::Result<()> {
    debug_assert_eq!(offset % PAGE_SIZE, 0, "extents are page-granular");
    debug_assert_eq!(len % PAGE_SIZE, 0, "extents are page-granular");
    let s = map_range_shared(src, offset, len)?;
    let d = match map_range_shared(dst, offset, len) {
        Ok(d) => d,
        Err(e) => {
            unsafe { unmap(s, len) };
            return Err(e);
        }
    };
    unsafe {
        std::ptr::copy_nonoverlapping(s, d, len);
        unmap(s, len);
        unmap(d, len);
    }
    Ok(())
}

/// How physical pages are returned to the OS (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseStrategy {
    /// `fallocate(FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE)` — the
    /// paper's mechanism.
    PunchHole,
    /// `madvise(MADV_REMOVE)` on the identity mapping.
    MadviseRemove,
    /// `madvise(MADV_DONTNEED)` on the identity mapping (RSS-equivalent
    /// fallback; file pages persist until reuse).
    MadviseDontNeed,
    /// No supported release primitive; accounting only.
    Nop,
}

impl ReleaseStrategy {
    /// Probes the strongest supported strategy using the first page of a
    /// freshly created arena (`base` must map `file` at offset 0 and the
    /// file must not yet contain data the caller cares about).
    pub fn detect(file: &MemFile, base: *mut u8) -> ReleaseStrategy {
        unsafe {
            let rc = libc::fallocate(
                file.fd(),
                libc::FALLOC_FL_PUNCH_HOLE | libc::FALLOC_FL_KEEP_SIZE,
                0,
                PAGE_SIZE as libc::off_t,
            );
            if rc == 0 {
                return ReleaseStrategy::PunchHole;
            }
            if libc::madvise(base as *mut libc::c_void, PAGE_SIZE, libc::MADV_REMOVE) == 0 {
                return ReleaseStrategy::MadviseRemove;
            }
            if libc::madvise(base as *mut libc::c_void, PAGE_SIZE, libc::MADV_DONTNEED) == 0 {
                return ReleaseStrategy::MadviseDontNeed;
            }
        }
        ReleaseStrategy::Nop
    }

    /// Releases `[file_offset, file_offset+len)`; `addr` must be a current
    /// identity mapping of that file range (required by the `madvise`
    /// strategies, ignored by punch-hole).
    ///
    /// Returns whether pages were actually released.
    ///
    /// # Safety
    ///
    /// The released range must contain no live objects, and `addr` must map
    /// `file` at exactly `file_offset` for `len` bytes.
    pub unsafe fn release(
        self,
        file: &MemFile,
        addr: *mut u8,
        len: usize,
        file_offset: usize,
    ) -> bool {
        match self {
            ReleaseStrategy::PunchHole => {
                libc::fallocate(
                    file.fd(),
                    libc::FALLOC_FL_PUNCH_HOLE | libc::FALLOC_FL_KEEP_SIZE,
                    file_offset as libc::off_t,
                    len as libc::off_t,
                ) == 0
            }
            ReleaseStrategy::MadviseRemove => {
                libc::madvise(addr as *mut libc::c_void, len, libc::MADV_REMOVE) == 0
            }
            ReleaseStrategy::MadviseDontNeed => {
                libc::madvise(addr as *mut libc::c_void, len, libc::MADV_DONTNEED) == 0
            }
            ReleaseStrategy::Nop => false,
        }
    }
}

/// Reads the process resident-set size in kilobytes from
/// `/proc/self/statm` (the secondary metric; see DESIGN.md).
///
/// Returns `None` if procfs is unavailable.
pub fn process_rss_kb() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = s.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * (PAGE_SIZE as u64 / 1024))
}

/// Counts how many of the `pages` pages starting at `addr` are resident
/// in physical memory, via `mincore(2)` (the mesh-sense residency
/// sampler). `addr` must be page-aligned and inside a live mapping owned
/// by the caller (the arena reservation qualifies: retired ranges revert
/// to `PROT_NONE` reservations, which `mincore` reports as non-resident
/// without faulting). Returns `None` when the kernel rejects the range
/// (e.g. a race with an unmap) or on non-Linux test stubs.
pub fn resident_pages(addr: usize, pages: usize) -> Option<usize> {
    if pages == 0 {
        return Some(0);
    }
    let mut vec = vec![0u8; pages];
    let rc = unsafe {
        libc::mincore(
            addr as *mut libc::c_void,
            pages * PAGE_SIZE,
            vec.as_mut_ptr(),
        )
    };
    if rc != 0 {
        return None;
    }
    Some(vec.iter().filter(|&&b| b & 1 != 0).count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfile_create_and_size() {
        let f = MemFile::create(16 * PAGE_SIZE).unwrap();
        assert!(f.fd() >= 0);
        assert_eq!(f.len(), 16 * PAGE_SIZE);
        assert!(!f.is_empty());
    }

    #[test]
    fn map_write_read_roundtrip() {
        let f = MemFile::create(4 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        unsafe {
            *base = 0xAB;
            *base.add(3 * PAGE_SIZE) = 0xCD;
            assert_eq!(*base, 0xAB);
            assert_eq!(*base.add(3 * PAGE_SIZE), 0xCD);
            unmap(base, 4 * PAGE_SIZE);
        }
    }

    #[test]
    fn remap_fixed_aliases_pages() {
        let f = MemFile::create(4 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        unsafe {
            *base = 0x11;
            *base.add(PAGE_SIZE) = 0x22;
            // Alias virtual page 1 onto file page 0.
            remap_fixed(base.add(PAGE_SIZE), PAGE_SIZE, &f, 0).unwrap();
            assert_eq!(*base.add(PAGE_SIZE), 0x11, "alias must read file page 0");
            *base.add(PAGE_SIZE) = 0x33;
            assert_eq!(*base, 0x33, "writes through alias visible at original");
            // Restore the identity mapping.
            remap_fixed(base.add(PAGE_SIZE), PAGE_SIZE, &f, PAGE_SIZE).unwrap();
            assert_eq!(*base.add(PAGE_SIZE), 0x22, "file page 1 data preserved");
            unmap(base, 4 * PAGE_SIZE);
        }
    }

    #[test]
    fn detect_returns_some_strategy() {
        let f = MemFile::create(4 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        let s = ReleaseStrategy::detect(&f, base);
        assert_ne!(s, ReleaseStrategy::Nop, "no release primitive available");
        unsafe { unmap(base, 4 * PAGE_SIZE) };
    }

    #[test]
    fn release_is_safe_on_dead_range() {
        let f = MemFile::create(4 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        let s = ReleaseStrategy::detect(&f, base);
        unsafe {
            *base.add(2 * PAGE_SIZE) = 0x7F;
            let ok = s.release(&f, base.add(2 * PAGE_SIZE), PAGE_SIZE, 2 * PAGE_SIZE);
            assert!(ok);
            // The page may read as zero (punch) or stale (DONTNEED); either
            // way access must not fault.
            let v = *base.add(2 * PAGE_SIZE);
            assert!(v == 0 || v == 0x7F);
            unmap(base, 4 * PAGE_SIZE);
        }
    }

    #[test]
    fn protect_toggles() {
        let f = MemFile::create(PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        unsafe {
            *base = 1;
            protect_read(base, PAGE_SIZE).unwrap();
            assert_eq!(*base, 1, "reads still allowed");
            protect_read_write(base, PAGE_SIZE).unwrap();
            *base = 2;
            assert_eq!(*base, 2);
            unmap(base, PAGE_SIZE);
        }
    }

    #[test]
    fn reserve_map_retire_roundtrip() {
        // Reserve a window, map a segment file into its middle, write
        // through it, retire it back to PROT_NONE, then map a fresh file
        // over the same range: the segmented arena's lifecycle in
        // miniature.
        let base = reserve_region(8 * PAGE_SIZE).unwrap();
        let seg_at = unsafe { base.add(2 * PAGE_SIZE) };
        let f1 = MemFile::create(2 * PAGE_SIZE).unwrap();
        unsafe {
            map_file_fixed(&f1, seg_at).unwrap();
            *seg_at = 0x41;
            assert_eq!(*seg_at, 0x41);
            unmap_to_reserved(seg_at, 2 * PAGE_SIZE).unwrap();
            let f2 = MemFile::create(2 * PAGE_SIZE).unwrap();
            map_file_fixed(&f2, seg_at).unwrap();
            assert_eq!(*seg_at, 0, "fresh segment file reads zero");
            unmap(base, 8 * PAGE_SIZE);
        }
    }

    #[test]
    fn copy_file_sparse_preserves_data_and_holes() {
        let src = MemFile::create(8 * PAGE_SIZE).unwrap();
        let dst = MemFile::create(8 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&src).unwrap();
        unsafe {
            // Touch pages 1 and 5-6; leave the rest as holes.
            std::ptr::write_bytes(base.add(PAGE_SIZE), 0xA1, PAGE_SIZE);
            std::ptr::write_bytes(base.add(5 * PAGE_SIZE), 0xA5, 2 * PAGE_SIZE);
        }
        let copied = copy_file_sparse(&src, &dst).unwrap();
        // Either sparse-aware (3 pages) or the full-copy fallback.
        assert!(copied == 3 * PAGE_SIZE || copied == 8 * PAGE_SIZE, "copied {copied}");
        let d = map_file_shared(&dst).unwrap();
        unsafe {
            assert_eq!(*d.add(PAGE_SIZE), 0xA1);
            assert_eq!(*d.add(PAGE_SIZE + PAGE_SIZE - 1), 0xA1);
            assert_eq!(*d.add(5 * PAGE_SIZE), 0xA5);
            assert_eq!(*d.add(7 * PAGE_SIZE - 1), 0xA5);
            assert_eq!(*d, 0, "hole stays zero");
            assert_eq!(*d.add(4 * PAGE_SIZE), 0, "hole stays zero");
            // The copy is a snapshot: later writes to src must not show.
            *base.add(PAGE_SIZE) = 0x77;
            assert_eq!(*d.add(PAGE_SIZE), 0xA1);
            unmap(base, 8 * PAGE_SIZE);
            unmap(d, 8 * PAGE_SIZE);
        }
    }

    #[test]
    fn rss_readable() {
        // Only checks the plumbing; exact values are environment-dependent.
        let r = process_rss_kb();
        assert!(r.is_none() || r.unwrap() > 0);
    }

    #[test]
    fn resident_pages_tracks_touch_and_release() {
        let f = MemFile::create(4 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        unsafe {
            std::ptr::write_bytes(base, 0x5C, 2 * PAGE_SIZE);
        }
        let r = resident_pages(base as usize, 4).expect("mapped range");
        assert!(r >= 2, "touched pages must be resident, got {r}");
        let s = ReleaseStrategy::detect(&f, base);
        unsafe {
            s.release(&f, base, 2 * PAGE_SIZE, 0);
        }
        let after = resident_pages(base as usize, 4).expect("mapped range");
        assert!(after <= r, "release must not grow residency");
        unsafe { unmap(base, 4 * PAGE_SIZE) };
        assert_eq!(resident_pages(0x10, 1), None, "unmapped range rejected");
    }
}
