//! Lock-free MPSC remote-free queues: one per size class.
//!
//! A non-local free (§4.4.4) no longer takes any heap lock. The freeing
//! thread resolves the owning size class through the lock-free
//! [`crate::page_map::PageMap`] and pushes the address onto that class's
//! queue — a Treiber stack of heap-allocated nodes. The next thread to
//! acquire the class lock (a refill, a meshing pass, a stats snapshot)
//! drains the stack with one atomic `swap` and applies the frees to the
//! bitmaps and occupancy bins under the lock.
//!
//! Nodes are boxed rather than threaded through the freed objects
//! themselves: in a meshing allocator the physical page behind a freed
//! slot can be superseded at any time (the slot's span may become a mesh
//! source whose dead slots are *not* copied), so intrusive freelist links
//! in object memory could be silently replaced by the destination span's
//! contents. Boxed nodes also keep the seed's full double-free detection:
//! duplicate addresses are two distinct nodes, and the drain's
//! `bitmap.unset` rejects the second one.
//!
//! Validation is deferred to the drain on purpose — the pusher does not
//! know whether the free is a double free, only the class lock holder
//! does. The push is therefore *optimistic*; accounting (`frees`,
//! `live_bytes`) moves at drain time, and readers that need settled
//! numbers ([`crate::Mesh::stats`]) flush the queues first.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A node carries either one address (the unbuffered legacy push, which
/// pays no extra allocation) or a whole sender-side batch.
enum Payload {
    One(usize),
    Many(Vec<usize>),
}

struct Node {
    payload: Payload,
    next: *mut Node,
}

/// A multi-producer, single-drainer stack of freed addresses.
#[derive(Debug)]
pub(crate) struct RemoteFreeQueue {
    head: AtomicPtr<Node>,
}

impl RemoteFreeQueue {
    pub const fn new() -> RemoteFreeQueue {
        RemoteFreeQueue {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes a freed address. Lock-free; callable from any thread.
    pub fn push(&self, addr: usize) {
        self.push_node(Payload::One(addr));
    }

    /// Pushes a whole sender-side batch of freed addresses as one node —
    /// one allocation and one CAS per `batch.len()` frees. Empty batches
    /// are ignored.
    pub fn push_batch(&self, batch: Vec<usize>) {
        if !batch.is_empty() {
            self.push_node(Payload::Many(batch));
        }
    }

    fn push_node(&self, payload: Payload) {
        let node = Box::into_raw(Box::new(Node {
            payload,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is owned by this push until the CAS succeeds.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Whether the queue currently appears empty (racy; used only to skip
    /// needless lock acquisitions).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed).is_null()
    }

    /// Detaches the entire stack and returns an iterator over its
    /// addresses (LIFO order). Nodes are freed as the iterator advances.
    pub fn drain(&self) -> Drain {
        Drain {
            node: self.head.swap(ptr::null_mut(), Ordering::Acquire),
            batch: None,
        }
    }
}

impl Drop for RemoteFreeQueue {
    fn drop(&mut self) {
        // Free any nodes still queued at heap teardown.
        for _ in self.drain() {}
    }
}

/// Iterator over a detached remote-free list. Batch nodes are yielded
/// address by address, in the order the sender buffered them.
pub(crate) struct Drain {
    node: *mut Node,
    /// In-progress batch node: (addresses, next index to yield).
    batch: Option<(Vec<usize>, usize)>,
}

impl Iterator for Drain {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if let Some((ref addrs, ref mut i)) = self.batch {
                if *i < addrs.len() {
                    let addr = addrs[*i];
                    *i += 1;
                    return Some(addr);
                }
                self.batch = None;
            }
            if self.node.is_null() {
                return None;
            }
            // SAFETY: the drain owns the detached list exclusively; each
            // node was created by `Box::into_raw` in `push_node`.
            let boxed = unsafe { Box::from_raw(self.node) };
            self.node = boxed.next;
            match boxed.payload {
                Payload::One(addr) => return Some(addr),
                Payload::Many(addrs) => self.batch = Some((addrs, 0)),
            }
        }
    }
}

impl Drop for Drain {
    fn drop(&mut self) {
        // Exhaust (and thereby free) any unconsumed nodes.
        for _ in self {}
    }
}

/// A thread's sender-side remote-free buffers: one `Vec` per size class,
/// each behind its own mutex. The owning thread is the only pusher, so
/// the locks are uncontended in the fast path; they exist so *other*
/// threads — a stats snapshot, the exhaustion fallback — can steal the
/// pending frees through the global heap's sender registry instead of
/// waiting for the owner to fill a batch or exit.
#[derive(Debug)]
pub(crate) struct SenderBufs {
    bufs: Vec<crate::sync::Mutex<Vec<usize>>>,
}

impl SenderBufs {
    pub fn new() -> SenderBufs {
        SenderBufs {
            bufs: (0..crate::size_classes::NUM_SIZE_CLASSES)
                .map(|_| crate::sync::Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Locks one class's buffer (a leaf lock: nothing else is acquired
    /// while it is held).
    pub fn lock(&self, class_idx: usize) -> crate::sync::MutexGuard<'_, Vec<usize>> {
        self.bufs[class_idx].lock()
    }

    /// Steals one class's pending frees, leaving the buffer empty.
    pub fn take(&self, class_idx: usize) -> Vec<usize> {
        std::mem::take(&mut *self.bufs[class_idx].lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_drain_lifo() {
        let q = RemoteFreeQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        q.push(3);
        assert!(!q.is_empty());
        let got: Vec<usize> = q.drain().collect();
        assert_eq!(got, vec![3, 2, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_pushers_lose_nothing() {
        let q = Arc::new(RemoteFreeQueue::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..10_000usize {
                        q.push(t * 10_000 + i + 1);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let mut got: Vec<usize> = q.drain().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 80_000);
        assert_eq!(got.first(), Some(&1));
        assert_eq!(got.last(), Some(&80_000));
        got.dedup();
        assert_eq!(got.len(), 80_000, "no duplicates, no losses");
    }

    #[test]
    fn batch_nodes_interleave_with_singles() {
        let q = RemoteFreeQueue::new();
        q.push(1);
        q.push_batch(vec![2, 3, 4]);
        q.push_batch(Vec::new()); // no-op
        q.push(5);
        let got: Vec<usize> = q.drain().collect();
        // LIFO over nodes, sender order within a batch.
        assert_eq!(got, vec![5, 2, 3, 4, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_batch_pushers_lose_nothing() {
        let q = Arc::new(RemoteFreeQueue::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for chunk in 0..500usize {
                        let base = t * 10_000 + chunk * 20;
                        q.push_batch((base + 1..=base + 20).collect());
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let mut got: Vec<usize> = q.drain().collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 40_000, "no duplicates, no losses");
    }

    #[test]
    fn partial_drain_drop_frees_rest() {
        let q = RemoteFreeQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        let mut d = q.drain();
        assert!(d.next().is_some());
        drop(d); // must free the other 99 nodes (checked under ASan/valgrind)
        assert!(q.is_empty());
    }

    #[test]
    fn drain_while_pushing_keeps_all() {
        let q = Arc::new(RemoteFreeQueue::new());
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 1..=50_000usize {
                    q.push(i);
                }
            })
        };
        let mut seen = 0usize;
        while seen < 50_000 {
            seen += q.drain().count();
        }
        pusher.join().unwrap();
        assert_eq!(seen + q.drain().count(), 50_000);
    }
}
