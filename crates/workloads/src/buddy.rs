//! A binary buddy allocator *simulator* (address-space accounting only).
//!
//! The buddy system [Knowlton 1965] is the third classical allocator
//! family the fragmentation experiments compare against (alongside the
//! first-fit and best-fit freelists of [`crate::firstfit`]). It rounds
//! every request up to a power of two, splits larger blocks recursively,
//! and merges freed blocks with their "buddy" (the sibling block at
//! `offset ^ size`). Its internal fragmentation can approach 2× on its
//! own, before any Robson-style adversary — which is why size-segregated
//! allocators like Mesh use fine-grained size classes instead (§4).
//!
//! Like [`crate::firstfit::FreeListSim`], only address arithmetic is
//! simulated; no real memory is consumed.

use std::collections::{BTreeSet, HashMap};

/// Smallest block the simulator hands out.
pub const MIN_BLOCK: usize = 16;

/// A simulated binary buddy heap.
///
/// # Examples
///
/// ```
/// use mesh_workloads::buddy::BuddySim;
///
/// let mut sim = BuddySim::new();
/// let a = sim.alloc(24); // rounds to 32
/// assert_eq!(sim.live_bytes(), 32);
/// sim.free(a);
/// assert_eq!(sim.live_bytes(), 0);
/// ```
#[derive(Debug, Default)]
pub struct BuddySim {
    /// Free blocks per order: `free[k]` holds offsets of free 2^k blocks.
    free: Vec<BTreeSet<usize>>,
    /// Live allocations: offset → order.
    live: HashMap<usize, u32>,
    /// One past the highest byte in any block ever carved.
    brk: usize,
    /// Sum of rounded (block) sizes currently live.
    live_bytes: usize,
    /// Sum of requested sizes currently live (internal-fragmentation
    /// accounting).
    requested_bytes: usize,
}

fn order_for(size: usize) -> u32 {
    size.max(MIN_BLOCK).next_power_of_two().trailing_zeros()
}

impl BuddySim {
    /// Creates an empty simulated buddy heap.
    pub fn new() -> BuddySim {
        BuddySim::default()
    }

    fn free_set(&mut self, order: u32) -> &mut BTreeSet<usize> {
        let idx = order as usize;
        if self.free.len() <= idx {
            self.free.resize_with(idx + 1, BTreeSet::new);
        }
        &mut self.free[idx]
    }

    /// Allocates `size` bytes (rounded up to a power of two ≥
    /// [`MIN_BLOCK`]), returning the block's offset.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: usize) -> usize {
        assert!(size > 0, "zero-byte simulated allocation");
        let order = order_for(size);
        // Find the smallest free block of order ≥ `order`; split down.
        let mut from = None;
        for k in order..self.free.len().max(1) as u32 {
            if let Some(&off) = self.free.get(k as usize).and_then(|s| s.iter().next()) {
                from = Some((k, off));
                break;
            }
        }
        let offset = match from {
            Some((mut k, off)) => {
                self.free_set(k).remove(&off);
                while k > order {
                    k -= 1;
                    // Keep the low half, free the high half (the buddy).
                    self.free_set(k).insert(off + (1 << k));
                }
                off
            }
            None => {
                // Grow the heap: new block at the break, aligned to its size.
                let block = 1usize << order;
                let off = (self.brk + block - 1) & !(block - 1);
                // Alignment gaps become free blocks (carved greedily).
                let mut gap_start = self.brk;
                while gap_start < off {
                    let gap_order = (gap_start.trailing_zeros())
                        .min(((off - gap_start).ilog2()).min(order));
                    self.free_set(gap_order).insert(gap_start);
                    gap_start += 1 << gap_order;
                }
                self.brk = off + block;
                off
            }
        };
        self.live.insert(offset, order);
        self.live_bytes += 1 << order;
        self.requested_bytes += size;
        offset
    }

    /// Frees the block at `offset`, merging buddies as far as possible.
    ///
    /// # Panics
    ///
    /// Panics on double or invalid frees.
    pub fn free(&mut self, offset: usize) {
        let order = self.live.remove(&offset).expect("free of unknown block");
        self.live_bytes -= 1usize << order;
        // `requested_bytes` can only be adjusted approximately without
        // storing the request; store block size on the conservative side.
        self.requested_bytes = self.requested_bytes.saturating_sub(1 << order);
        let (mut off, mut k) = (offset, order);
        loop {
            let buddy = off ^ (1usize << k);
            // Merge only if the buddy is a free block of the same order
            // and lies within the heap.
            if buddy + (1 << k) <= self.brk
                && self.free.get(k as usize).is_some_and(|s| s.contains(&buddy))
            {
                self.free_set(k).remove(&buddy);
                off = off.min(buddy);
                k += 1;
            } else {
                break;
            }
        }
        self.free_set(k).insert(off);
    }

    /// Heap footprint (the break).
    pub fn footprint(&self) -> usize {
        self.brk
    }

    /// Bytes in live blocks (power-of-two rounded).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// External + internal fragmentation factor: footprint over live
    /// block bytes.
    pub fn fragmentation(&self) -> f64 {
        if self.live_bytes == 0 {
            if self.brk == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.brk as f64 / self.live_bytes as f64
        }
    }

    /// Number of free blocks across all orders (diagnostic).
    pub fn free_block_count(&self) -> usize {
        self.free.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two() {
        let mut s = BuddySim::new();
        s.alloc(24);
        assert_eq!(s.live_bytes(), 32);
        s.alloc(100);
        assert_eq!(s.live_bytes(), 32 + 128);
        s.alloc(1);
        assert_eq!(s.live_bytes(), 32 + 128 + MIN_BLOCK);
    }

    #[test]
    fn split_and_remerge_round_trip() {
        let mut s = BuddySim::new();
        let a = s.alloc(256);
        assert_eq!(a, 0);
        s.free(a);
        // A 16-byte request splits the 256 block down to order 4.
        let b = s.alloc(16);
        assert_eq!(b, 0);
        // Buddies at orders 4..8 are free: 16@16, 32@32, 64@64, 128@128.
        assert_eq!(s.free_block_count(), 4);
        s.free(b);
        // Full cascade merge back to one 256 block.
        assert_eq!(s.free_block_count(), 1);
        let c = s.alloc(256);
        assert_eq!(c, 0, "merged block reused");
    }

    #[test]
    fn buddy_mask_addressing() {
        let mut s = BuddySim::new();
        let a = s.alloc(16); // [0,16)
        let b = s.alloc(16); // [16,32) — a's buddy
        let c = s.alloc(16); // [32,48)
        let _d = s.alloc(16); // [48,64)
        s.free(a);
        s.free(c);
        // Freeing b merges [0,32); c alone cannot merge (its buddy d live).
        s.free(b);
        let count = s.free_block_count();
        assert_eq!(count, 2, "one 32-block and one 16-block");
    }

    #[test]
    fn footprint_grows_only_when_needed() {
        let mut s = BuddySim::new();
        let a = s.alloc(64);
        s.free(a);
        let _b = s.alloc(32); // reuses the freed 64's low half
        assert_eq!(s.footprint(), 64);
    }

    #[test]
    fn fragmentation_metrics() {
        let mut s = BuddySim::new();
        assert_eq!(s.fragmentation(), 1.0);
        let a = s.alloc(16);
        let _b = s.alloc(16);
        s.free(a);
        assert_eq!(s.fragmentation(), 2.0);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn double_free_panics() {
        let mut s = BuddySim::new();
        let a = s.alloc(16);
        s.free(a);
        s.free(a);
    }

    #[test]
    fn interleaved_sizes_stay_consistent() {
        let mut s = BuddySim::new();
        let mut blocks = Vec::new();
        for i in 1..200usize {
            blocks.push(s.alloc((i * 37) % 1000 + 1));
            if i % 3 == 0 {
                let b = blocks.swap_remove(i % blocks.len());
                s.free(b);
            }
        }
        for b in blocks {
            s.free(b);
        }
        assert_eq!(s.live_bytes(), 0);
        // Everything freed: blocks must have merged into large runs, and
        // the whole footprint must be free.
        let free_total: usize = (0..s.free.len())
            .map(|k| s.free[k].len() * (1usize << k))
            .sum();
        assert_eq!(free_total, s.footprint());
    }
}
