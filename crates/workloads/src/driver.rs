//! The allocator-under-test abstraction used by every §6 workload.
//!
//! The paper evaluates Mesh against jemalloc and glibc. Those cannot be
//! vendored here, so (per DESIGN.md):
//!
//! * the **non-compacting baseline** is Mesh with meshing disabled —
//!   a segregated-fit allocator the paper itself equates with jemalloc for
//!   these purposes (§6.3: "With meshing disabled, Mesh exhibits similar
//!   runtime and heap size to jemalloc");
//! * the **no-randomization ablation** is Mesh with sequential allocation;
//! * the process's real libc allocator ([`std::alloc::System`]) is
//!   available for *latency* comparisons (it cannot report a heap
//!   footprint, so it is excluded from memory figures).

use mesh_core::{Mesh, MeshConfig, MeshSummary};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::fmt;

/// Which allocator a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// Full Mesh: meshing + randomized allocation (the paper's default).
    MeshFull,
    /// Meshing disabled — the jemalloc/glibc stand-in (§6.3).
    MeshNoMesh,
    /// Meshing enabled but randomization disabled (§6.3 "Mesh (no rand)").
    MeshNoRand,
    /// The process's system allocator (latency baseline only).
    System,
}

impl AllocatorKind {
    /// The paper's label for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::MeshFull => "Mesh",
            AllocatorKind::MeshNoMesh => "Mesh (no meshing)",
            AllocatorKind::MeshNoRand => "Mesh (no rand)",
            AllocatorKind::System => "system malloc",
        }
    }

    /// All Mesh-backed kinds (the ones that can report heap footprints).
    pub fn mesh_kinds() -> [AllocatorKind; 3] {
        [
            AllocatorKind::MeshFull,
            AllocatorKind::MeshNoMesh,
            AllocatorKind::MeshNoRand,
        ]
    }

    /// Builds the driver with an arena of `arena_bytes` and a fixed seed.
    pub fn build(self, arena_bytes: usize, seed: u64) -> TestAllocator {
        match self {
            AllocatorKind::System => TestAllocator::system(),
            kind => {
                let config = MeshConfig::default()
                    .arena_bytes(arena_bytes)
                    .seed(seed)
                    .meshing(kind != AllocatorKind::MeshNoMesh)
                    .randomize(kind != AllocatorKind::MeshNoRand);
                TestAllocator::mesh(kind, config)
            }
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single-threaded allocator driver for workloads.
///
/// For multi-threaded workloads use [`TestAllocator::mesh_handle`] to get
/// the underlying [`Mesh`] and create per-thread heaps.
pub struct TestAllocator {
    kind: AllocatorKind,
    mesh: Option<(Mesh, mesh_core::ThreadHeap)>,
    /// Layout bookkeeping for the System backend (its `dealloc` needs the
    /// original layout).
    system_layouts: HashMap<usize, Layout>,
    system_live: usize,
}

impl fmt::Debug for TestAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestAllocator").field("kind", &self.kind).finish()
    }
}

impl TestAllocator {
    fn mesh(kind: AllocatorKind, config: MeshConfig) -> TestAllocator {
        let mesh = Mesh::new(config).expect("failed to build Mesh under test");
        let heap = mesh.thread_heap();
        TestAllocator {
            kind,
            mesh: Some((mesh, heap)),
            system_layouts: HashMap::new(),
            system_live: 0,
        }
    }

    /// Builds a Mesh-backed driver from an explicit configuration
    /// (used by ablation harnesses that sweep individual tunables).
    pub fn from_config(config: MeshConfig) -> TestAllocator {
        let kind = if !config.is_meshing_enabled() {
            AllocatorKind::MeshNoMesh
        } else if !config.is_randomized() {
            AllocatorKind::MeshNoRand
        } else {
            AllocatorKind::MeshFull
        };
        TestAllocator::mesh(kind, config)
    }

    fn system() -> TestAllocator {
        TestAllocator {
            kind: AllocatorKind::System,
            mesh: None,
            system_layouts: HashMap::new(),
            system_live: 0,
        }
    }

    /// Which configuration this driver runs.
    pub fn kind(&self) -> AllocatorKind {
        self.kind
    }

    /// The underlying Mesh heap (None for the System backend).
    pub fn mesh_handle(&self) -> Option<Mesh> {
        self.mesh.as_ref().map(|(m, _)| m.clone())
    }

    /// Allocates `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics on exhaustion — workloads are sized to fit their arenas, so
    /// exhaustion is a harness bug worth failing loudly on.
    pub fn malloc(&mut self, size: usize) -> *mut u8 {
        match &mut self.mesh {
            Some((_, heap)) => {
                let p = heap.malloc(size);
                assert!(!p.is_null(), "arena exhausted at {size}-byte allocation");
                p
            }
            None => {
                let layout =
                    Layout::from_size_align(size.max(1), 16).expect("bad layout");
                let p = unsafe { System.alloc(layout) };
                assert!(!p.is_null(), "system allocator returned null");
                self.system_layouts.insert(p as usize, layout);
                self.system_live += size;
                p
            }
        }
    }

    /// Frees `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must come from this driver's `malloc` and not be freed twice.
    pub unsafe fn free(&mut self, ptr: *mut u8) {
        match &mut self.mesh {
            Some((_, heap)) => heap.free(ptr),
            None => {
                let layout = self
                    .system_layouts
                    .remove(&(ptr as usize))
                    .expect("freeing unknown system pointer");
                self.system_live -= layout.size();
                System.dealloc(ptr, layout);
            }
        }
    }

    /// Physical heap footprint in bytes, `None` for the System backend
    /// (which cannot report one).
    pub fn heap_bytes(&self) -> Option<usize> {
        self.mesh.as_ref().map(|(m, _)| m.heap_bytes())
    }

    /// Full heap statistics snapshot (peak footprint, segment counts, …),
    /// `None` for the System backend.
    pub fn heap_stats(&self) -> Option<mesh_core::HeapStats> {
        self.mesh.as_ref().map(|(m, _)| m.stats())
    }

    /// Live (allocated, not yet freed) bytes as tracked by the allocator.
    pub fn live_bytes(&self) -> usize {
        match &self.mesh {
            Some((m, _)) => m.stats().live_bytes,
            None => self.system_live,
        }
    }

    /// Forces a meshing pass (no-op for non-meshing configurations —
    /// `mesh_now` runs but finds nothing to do — and for System).
    pub fn mesh_now(&mut self) -> MeshSummary {
        match &self.mesh {
            Some((m, _)) => m.mesh_now(),
            None => MeshSummary::default(),
        }
    }

    /// Releases dirty pages (for end-of-phase footprint measurements).
    pub fn purge(&mut self) {
        if let Some((m, _)) = &self.mesh {
            m.purge_dirty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(AllocatorKind::MeshFull.label(), "Mesh");
        assert_eq!(AllocatorKind::MeshNoMesh.label(), "Mesh (no meshing)");
        assert_eq!(AllocatorKind::MeshNoRand.label(), "Mesh (no rand)");
    }

    #[test]
    fn mesh_kinds_roundtrip() {
        for kind in AllocatorKind::mesh_kinds() {
            let mut a = kind.build(32 << 20, 5);
            let p = a.malloc(100);
            assert!(a.heap_bytes().unwrap() > 0);
            assert_eq!(a.live_bytes(), 112, "class-rounded live bytes");
            unsafe { a.free(p) };
            assert_eq!(a.live_bytes(), 0);
        }
    }

    #[test]
    fn system_backend_tracks_live() {
        let mut a = AllocatorKind::System.build(0, 0);
        let p = a.malloc(1000);
        assert_eq!(a.live_bytes(), 1000);
        assert_eq!(a.heap_bytes(), None);
        unsafe { a.free(p) };
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.mesh_now(), MeshSummary::default());
    }

    #[test]
    fn no_mesh_config_never_meshes() {
        let mut a = AllocatorKind::MeshNoMesh.build(64 << 20, 1);
        let ptrs: Vec<_> = (0..2048).map(|_| a.malloc(256)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 4 != 0 {
                unsafe { a.free(p) };
            }
        }
        let summary = a.mesh_now();
        assert_eq!(summary.pairs_meshed, 0);
    }

    #[test]
    fn full_mesh_config_compacts() {
        let mut a = AllocatorKind::MeshFull.build(64 << 20, 1);
        let ptrs: Vec<_> = (0..8192).map(|_| a.malloc(256)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 != 0 {
                unsafe { a.free(p) };
            }
        }
        let before = a.heap_bytes().unwrap();
        let summary = a.mesh_now();
        assert!(summary.pairs_meshed > 0);
        assert!(a.heap_bytes().unwrap() < before);
    }
}
