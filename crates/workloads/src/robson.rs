//! The Robson fragmentation adversary (§1).
//!
//! Robson (1977) showed every classical allocator can be driven to a
//! footprint of ~`log₂(max/min)` times its live data — 13× for the
//! paper's 16-byte-to-128-KB example. This module implements the
//! classic adversary against the [`crate::firstfit`] simulator, and the
//! within-size-class analog against real Mesh heaps, demonstrating that
//! meshing keeps the footprint bounded where first fit blows up.
//!
//! The adversary proceeds in doubling phases: fill the budget with
//! objects of size `s`, then free all but every second one — leaving
//! `s`-byte holes that can never serve the next phase's `2s`-byte
//! requests. Each phase forces fresh break growth while live bytes stay
//! below the budget.

use crate::driver::TestAllocator;
use crate::firstfit::{FitPolicy, FreeListSim};
use mesh_core::rng::Rng;

/// Per-phase measurement of the adversary run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobsonPhase {
    /// Object size of this phase.
    pub size: usize,
    /// Live bytes after the phase's frees.
    pub live_bytes: usize,
    /// Heap footprint after the phase.
    pub footprint: usize,
}

/// Result of the adversary against a simulated classical allocator.
#[derive(Debug, Clone)]
pub struct RobsonReport {
    /// Per-phase stats.
    pub phases: Vec<RobsonPhase>,
    /// Final footprint / final live bytes.
    pub final_factor: f64,
    /// The theoretical `log₂(max/min)` bound for these sizes.
    pub robson_bound: f64,
}

/// Runs the doubling adversary against a freelist simulator with a live
/// budget of `budget` bytes and sizes from `min_size` to `max_size`
/// (powers of two).
///
/// # Panics
///
/// Panics unless sizes are powers of two with `min_size < max_size`.
pub fn robson_adversary(
    policy: FitPolicy,
    min_size: usize,
    max_size: usize,
    budget: usize,
) -> RobsonReport {
    assert!(min_size.is_power_of_two() && max_size.is_power_of_two());
    assert!(min_size < max_size && budget >= 4 * max_size);
    let mut sim = FreeListSim::new(policy);
    let mut phases = Vec::new();
    let mut survivors: Vec<usize> = Vec::new();

    let mut size = min_size;
    while size <= max_size {
        // Fill: allocate up to the live budget with `size`-byte objects.
        let mut batch = Vec::new();
        while sim.live_bytes() + size <= budget {
            batch.push(sim.alloc(size));
        }
        // Free the previous phase's survivors (their pattern has done its
        // damage: the holes they pinned are too small for this phase).
        for off in survivors.drain(..) {
            sim.free(off);
        }
        // Keep every second object: the gaps between survivors are
        // exactly `size` bytes — useless for the next (doubled) size.
        for (i, off) in batch.into_iter().enumerate() {
            if i % 2 == 0 {
                sim.free(off);
            } else {
                survivors.push(off);
            }
        }
        phases.push(RobsonPhase {
            size,
            live_bytes: sim.live_bytes(),
            footprint: sim.footprint(),
        });
        size *= 2;
    }
    let final_factor = sim.footprint() as f64 / sim.live_bytes().max(1) as f64;
    RobsonReport {
        phases,
        final_factor,
        robson_bound: mesh_graph_bound(min_size, max_size),
    }
}

fn mesh_graph_bound(min_size: usize, max_size: usize) -> f64 {
    (max_size as f64 / min_size as f64).log2()
}

/// The adversary adapted to a binary buddy heap.
///
/// Buddy systems dodge the classic *external* doubling trick — a freed
/// `s`-block merges with its buddy into exactly the `2s`-block the next
/// phase wants — so the adversary instead requests `2^k + 1`-byte objects
/// (worst-case internal fragmentation, each wasting nearly half its
/// block) while still applying the keep-every-second-block pattern to pin
/// merges.
pub fn robson_adversary_buddy(
    min_size: usize,
    max_size: usize,
    budget: usize,
) -> RobsonReport {
    assert!(min_size.is_power_of_two() && max_size.is_power_of_two());
    assert!(min_size < max_size && budget >= 4 * max_size);
    let mut sim = crate::buddy::BuddySim::new();
    let mut phases = Vec::new();
    let mut survivors: Vec<usize> = Vec::new();
    let mut size = min_size;
    while size <= max_size {
        // Just over half a block: a 2^k+1 request occupies a 2^{k+1} block.
        let request = size + 1;
        let mut batch = Vec::new();
        let mut live_requested = 0usize;
        while live_requested + request <= budget {
            batch.push(sim.alloc(request));
            live_requested += request;
        }
        for off in survivors.drain(..) {
            sim.free(off);
        }
        for (i, off) in batch.into_iter().enumerate() {
            if i % 2 == 0 {
                sim.free(off);
            } else {
                survivors.push(off);
            }
        }
        phases.push(RobsonPhase {
            size: request,
            live_bytes: sim.live_bytes(),
            footprint: sim.footprint(),
        });
        size *= 2;
    }
    // Requested bytes ≈ live_bytes/2 + 1 per object: report the factor
    // against what the application actually asked for.
    let requested = phases
        .last()
        .map(|p| p.live_bytes / 2)
        .unwrap_or(1)
        .max(1);
    let final_factor = sim.footprint() as f64 / requested as f64;
    RobsonReport {
        phases,
        final_factor,
        robson_bound: mesh_graph_bound(min_size, max_size),
    }
}

/// Result of the within-class adversary against a real allocator.
#[derive(Debug, Clone, Copy)]
pub struct WithinClassReport {
    /// Heap footprint right after the frees (fragmented state).
    pub fragmented_bytes: usize,
    /// Heap footprint after compaction (meshing) had its chance.
    pub compacted_bytes: usize,
    /// Live bytes throughout.
    pub live_bytes: usize,
}

impl WithinClassReport {
    /// Fragmentation factor before compaction.
    pub fn fragmented_factor(&self) -> f64 {
        self.fragmented_bytes as f64 / self.live_bytes.max(1) as f64
    }

    /// Fragmentation factor after compaction.
    pub fn compacted_factor(&self) -> f64 {
        self.compacted_bytes as f64 / self.live_bytes.max(1) as f64
    }
}

/// The within-size-class fragmentation adversary against a real heap:
/// fill `spans` spans of `object_size` objects, then free everything
/// except one random object per span — the worst case a segregated-fit
/// allocator can suffer (occupancy `1/objects_per_span` with no
/// reclaimable span). Meshing is then allowed to compact.
pub fn within_class_adversary(
    alloc: &mut TestAllocator,
    object_size: usize,
    spans: usize,
    seed: u64,
) -> WithinClassReport {
    let class = mesh_core::SizeClass::for_size(object_size).expect("small class");
    let per_span = class.object_count();
    let total = spans * per_span;
    let mut rng = Rng::with_seed(seed);
    let mut ptrs = Vec::with_capacity(total);
    for _ in 0..total {
        let p = alloc.malloc(object_size);
        unsafe { std::ptr::write_bytes(p, 0xAB, object_size) };
        ptrs.push(p as usize);
    }
    // Free all but one object per span's worth of allocations.
    let keep_gap = per_span;
    let offset_within_group = (rng.below(keep_gap as u32)) as usize;
    for (i, ptr) in ptrs.iter().enumerate() {
        if i % keep_gap != offset_within_group {
            unsafe { alloc.free(*ptr as *mut u8) };
        }
    }
    alloc.purge();
    let fragmented_bytes = alloc.heap_bytes().unwrap_or(0);
    let live_bytes = alloc.live_bytes();
    // Give compaction several passes (alias-count limits cap each pass).
    for _ in 0..6 {
        alloc.mesh_now();
    }
    let compacted_bytes = alloc.heap_bytes().unwrap_or(0);
    // Teardown.
    for (i, ptr) in ptrs.iter().enumerate() {
        if i % keep_gap == offset_within_group {
            unsafe { alloc.free(*ptr as *mut u8) };
        }
    }
    WithinClassReport {
        fragmented_bytes,
        compacted_bytes,
        live_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::AllocatorKind;

    #[test]
    fn adversary_inflates_first_fit_toward_log_bound() {
        // Paper example scale-down: 16 B .. 16 KB (10 doublings).
        let report = robson_adversary(FitPolicy::FirstFit, 16, 16 * 1024, 1 << 20);
        assert_eq!(report.phases.len(), 11);
        assert!((report.robson_bound - 10.0).abs() < 1e-9);
        assert!(
            report.final_factor > report.robson_bound / 4.0,
            "factor {:.2} nowhere near the log bound {:.1}",
            report.final_factor,
            report.robson_bound
        );
        // Footprint grows monotonically across phases.
        for w in report.phases.windows(2) {
            assert!(w[1].footprint >= w[0].footprint);
        }
    }

    #[test]
    fn best_fit_suffers_too() {
        let report = robson_adversary(FitPolicy::BestFit, 16, 4 * 1024, 1 << 20);
        assert!(report.final_factor > 2.0);
    }

    #[test]
    fn next_fit_suffers_too() {
        let report = robson_adversary(FitPolicy::NextFit, 16, 4 * 1024, 1 << 20);
        assert!(report.final_factor > 2.0);
    }

    #[test]
    fn buddy_adversary_exposes_internal_fragmentation() {
        let report = robson_adversary_buddy(16, 4 * 1024, 1 << 20);
        assert_eq!(report.phases.len(), 9);
        // Each 2^k+1 request burns a 2^{k+1} block: factor ≥ ~2 from
        // internal waste alone, plus pinned-survivor external waste.
        assert!(report.final_factor > 2.0, "got {}", report.final_factor);
    }

    #[test]
    fn meshing_compacts_the_within_class_worst_case() {
        let mut full = AllocatorKind::MeshFull.build(256 << 20, 1);
        let r = within_class_adversary(&mut full, 256, 128, 42);
        assert!(
            r.compacted_factor() < r.fragmented_factor() / 1.8,
            "meshing should at least halve the worst case: {:.1}× → {:.1}×",
            r.fragmented_factor(),
            r.compacted_factor()
        );
    }

    #[test]
    fn no_meshing_cannot_compact_it() {
        let mut base = AllocatorKind::MeshNoMesh.build(256 << 20, 1);
        let r = within_class_adversary(&mut base, 256, 128, 42);
        assert_eq!(
            r.fragmented_bytes, r.compacted_bytes,
            "without meshing the fragmented footprint is permanent"
        );
        assert!(r.fragmented_factor() > 8.0, "got {}", r.fragmented_factor());
    }
}
