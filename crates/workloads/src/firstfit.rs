//! A classical freelist allocator *simulator* (address-space accounting
//! only) — the §1/§7 baseline family Robson's worst-case bounds apply to.
//!
//! Mesh's claim is that it breaks the Robson bounds *with high
//! probability* while first-fit/best-fit allocators provably cannot. To
//! demonstrate the gap we simulate a classic boundary-tag heap: a sorted
//! free list with address-ordered first-fit (or best-fit) placement,
//! coalescing on free, growing the heap only when no block fits. Only the
//! address arithmetic is simulated — no real memory is consumed — which
//! lets the adversary run at paper scale instantly.

use std::collections::HashMap;

/// Placement policy for the simulated allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitPolicy {
    /// Lowest-address block that fits (glibc-style first fit).
    FirstFit,
    /// Smallest block that fits, ties to lower address.
    BestFit,
    /// First fit starting from where the previous search stopped
    /// (Knuth's roving-pointer variant).
    NextFit,
}

/// A simulated freelist heap.
///
/// # Examples
///
/// ```
/// use mesh_workloads::firstfit::{FitPolicy, FreeListSim};
///
/// let mut sim = FreeListSim::new(FitPolicy::FirstFit);
/// let a = sim.alloc(64);
/// let b = sim.alloc(64);
/// sim.free(a);
/// // The freed hole is reused for an equal-size request.
/// assert_eq!(sim.alloc(64), a);
/// assert!(sim.footprint() >= 128);
/// # let _ = b;
/// ```
#[derive(Debug)]
pub struct FreeListSim {
    policy: FitPolicy,
    /// Free blocks as (offset, len), address-sorted, coalesced.
    free: Vec<(usize, usize)>,
    /// Live allocations: offset → len.
    live: HashMap<usize, usize>,
    /// One past the highest byte ever allocated (the heap break).
    brk: usize,
    live_bytes: usize,
    /// Next-fit roving offset: searches resume at the first free block at
    /// or above this address.
    rover: usize,
    /// Upper bound on the largest free-block length. Lets `alloc` skip
    /// the list scan when nothing can possibly fit (the common case in
    /// Robson-adversary phases, where the scan would otherwise make the
    /// simulation quadratic). Raised on every free, tightened to
    /// `size − 1` whenever a scan for `size` comes up empty; placement
    /// decisions are unaffected.
    max_free_len: usize,
}

impl FreeListSim {
    /// Creates an empty simulated heap.
    pub fn new(policy: FitPolicy) -> Self {
        FreeListSim {
            policy,
            free: Vec::new(),
            live: HashMap::new(),
            brk: 0,
            live_bytes: 0,
            rover: 0,
            max_free_len: 0,
        }
    }

    /// Allocates `size` bytes, returning the block's offset.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: usize) -> usize {
        assert!(size > 0, "zero-byte simulated allocation");
        let pick = if size > self.max_free_len {
            None // no free block can fit; skip the scan
        } else {
            let pick = match self.policy {
                FitPolicy::FirstFit => self.free.iter().position(|&(_, len)| len >= size),
                FitPolicy::BestFit => self
                    .free
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, len))| len >= size)
                    .min_by_key(|(_, &(_, len))| len)
                    .map(|(i, _)| i),
                FitPolicy::NextFit => {
                    // Resume at the rover, wrapping once.
                    let start = self
                        .free
                        .partition_point(|&(off, _)| off < self.rover);
                    (start..self.free.len())
                        .chain(0..start)
                        .find(|&i| self.free[i].1 >= size)
                }
            };
            if pick.is_none() {
                self.max_free_len = size - 1;
            }
            pick
        };
        let offset = match pick {
            Some(i) => {
                let (off, len) = self.free[i];
                if len == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + size, len - size);
                }
                off
            }
            None => {
                let off = self.brk;
                self.brk += size;
                off
            }
        };
        self.rover = offset + size;
        self.live.insert(offset, size);
        self.live_bytes += size;
        offset
    }

    /// Frees the block at `offset`, coalescing with neighbors.
    ///
    /// # Panics
    ///
    /// Panics on double/invalid frees — the simulator is a measuring
    /// device, so corruption is a harness bug.
    pub fn free(&mut self, offset: usize) {
        let len = self.live.remove(&offset).expect("free of unknown block");
        self.live_bytes -= len;
        let idx = self
            .free
            .binary_search_by_key(&offset, |&(off, _)| off)
            .expect_err("block already free");
        self.free.insert(idx, (offset, len));
        // Coalesce with successor, then predecessor.
        let mut merged = idx;
        if idx + 1 < self.free.len() {
            let (off, len) = self.free[idx];
            let (noff, nlen) = self.free[idx + 1];
            if off + len == noff {
                self.free[idx] = (off, len + nlen);
                self.free.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (poff, plen) = self.free[idx - 1];
            let (off, len) = self.free[idx];
            if poff + plen == off {
                self.free[idx - 1] = (poff, plen + len);
                self.free.remove(idx);
                merged = idx - 1;
            }
        }
        self.max_free_len = self.max_free_len.max(self.free[merged].1);
    }

    /// Heap footprint: the break (classical allocators cannot return
    /// interior holes to the OS).
    pub fn footprint(&self) -> usize {
        self.brk
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Fragmentation factor: footprint over live bytes.
    pub fn fragmentation(&self) -> f64 {
        if self.live_bytes == 0 {
            if self.brk == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.brk as f64 / self.live_bytes as f64
        }
    }

    /// Number of free blocks (diagnostic).
    pub fn free_block_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_when_empty() {
        let mut s = FreeListSim::new(FitPolicy::FirstFit);
        assert_eq!(s.alloc(10), 0);
        assert_eq!(s.alloc(20), 10);
        assert_eq!(s.footprint(), 30);
        assert_eq!(s.live_bytes(), 30);
    }

    #[test]
    fn first_fit_reuses_lowest_hole() {
        let mut s = FreeListSim::new(FitPolicy::FirstFit);
        let a = s.alloc(100);
        let b = s.alloc(100);
        let _c = s.alloc(100);
        s.free(a);
        s.free(b);
        // Coalesced hole [0,200): a 50-byte request takes its head.
        assert_eq!(s.alloc(50), 0);
        assert_eq!(s.free_block_count(), 1);
        assert_eq!(s.footprint(), 300);
    }

    #[test]
    fn best_fit_prefers_tightest_hole() {
        let mut s = FreeListSim::new(FitPolicy::BestFit);
        let a = s.alloc(100); // [0,100)
        let _b = s.alloc(10); // [100,110) separator
        let c = s.alloc(30); // [110,140)
        let _d = s.alloc(10); // separator
        s.free(a);
        s.free(c);
        // Best fit for 25 is the 30-byte hole at 110, not the 100-byte one.
        assert_eq!(s.alloc(25), 110);
    }

    #[test]
    fn coalescing_merges_all_three_ways() {
        let mut s = FreeListSim::new(FitPolicy::FirstFit);
        let a = s.alloc(10);
        let b = s.alloc(10);
        let c = s.alloc(10);
        s.free(a);
        s.free(c);
        assert_eq!(s.free_block_count(), 2);
        s.free(b); // merges with both neighbors
        assert_eq!(s.free_block_count(), 1);
        assert_eq!(s.alloc(30), 0, "fully coalesced");
    }

    #[test]
    fn fragmentation_metric() {
        let mut s = FreeListSim::new(FitPolicy::FirstFit);
        assert_eq!(s.fragmentation(), 1.0);
        let a = s.alloc(64);
        let _b = s.alloc(64);
        s.free(a);
        assert_eq!(s.fragmentation(), 2.0);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn double_free_panics() {
        let mut s = FreeListSim::new(FitPolicy::FirstFit);
        let a = s.alloc(8);
        s.free(a);
        s.free(a);
    }

    #[test]
    fn next_fit_roves_past_recent_allocation() {
        let mut s = FreeListSim::new(FitPolicy::NextFit);
        // Lay out four blocks, free the 1st and 3rd.
        let a = s.alloc(10); // [0,10)
        let _b = s.alloc(10); // [10,20)
        let c = s.alloc(10); // [20,30)
        let _d = s.alloc(10); // [30,40)
        s.free(a);
        s.free(c);
        // First next-fit search starts at the rover (40): wraps to hole a.
        assert_eq!(s.alloc(10), 0);
        // Rover now at 10: the next search finds hole c first, NOT a hole
        // before the rover — the defining next-fit behaviour.
        let e = s.alloc(5);
        assert_eq!(e, 20);
    }

    #[test]
    fn next_fit_wraps_and_extends_brk_when_full() {
        let mut s = FreeListSim::new(FitPolicy::NextFit);
        let a = s.alloc(10);
        s.free(a);
        // Request too large for the only hole: heap must grow.
        assert_eq!(s.alloc(20), 10);
        assert_eq!(s.footprint(), 30);
    }
}
