//! The Redis workload (§6.2.2, Figure 7).
//!
//! Reproduces the paper's adaptation of the official Redis test: the
//! server acts as an LRU cache capped at 100 MB of object data; the test
//! inserts 700,000 keys with 240-byte values, then 170,000 keys with
//! 492-byte values (sizes chosen so all allocators use comparable size
//! classes), then goes idle. During the idle period either
//!
//! * **activedefrag** (Redis 4.0's application-level defragmentation):
//!   every value is copied into a fresh allocation and the old one freed,
//!   in rate-limited batches — exactly the copy-and-hope-for-contiguity
//!   strategy the paper describes; or
//! * **meshing**: Mesh compacts the heap with no application cooperation.
//!
//! Two aspects of real Redis matter for the memory profile and are
//! modelled here:
//!
//! * **Sampled LRU eviction.** Redis does not maintain a strict LRU list;
//!   when `maxmemory` is hit it samples `maxmemory-samples` (default 5)
//!   random keys and evicts the least recently used of the sample. For a
//!   write-only cache workload this means *approximately* the oldest keys
//!   are evicted, but scattered rather than in strict insertion order —
//!   which is what shreds spans and creates the fragmentation Figure 7
//!   shows. A strict-FIFO queue would retire whole spans in allocation
//!   order and leave almost nothing for compaction to recover.
//! * **Per-entry metadata.** Each `SET` allocates more than the value:
//!   a `dictEntry`, an `robj` value wrapper, and an sds key string. These
//!   small allocations churn the small size classes alongside the values,
//!   for every allocator equally.
//!
//! The report captures the memory timeline plus insertion and compaction
//! times, reproducing Figure 7 and the §6.2.2 pause-time comparison.

use crate::driver::TestAllocator;
use crate::mstat::MemoryTimeline;
use mesh_core::rng::Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Modelled `dictEntry` size (three 64-bit words, as in Redis's dict.h).
const DICT_ENTRY_BYTES: usize = 24;
/// Modelled `robj` value-wrapper size (robj is 16 bytes on 64-bit).
const ROBJ_BYTES: usize = 16;
/// Modelled sds key-string size (sds header + "key:NNNNNNN").
const KEY_SDS_BYTES: usize = 28;

/// How the cache chooses an eviction victim when `max_memory` is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Redis's `allkeys-lru`: sample `samples` random keys, evict the
    /// least-recently-used of the sample (default `maxmemory-samples 5`).
    SampledLru {
        /// Keys sampled per eviction.
        samples: usize,
    },
    /// Strict insertion-order eviction (an idealized queue; provided for
    /// ablations — real Redis does not do this).
    Fifo,
}

/// Parameters of the Redis cache benchmark.
#[derive(Debug, Clone)]
pub struct RedisConfig {
    /// LRU cap on summed value bytes (paper: 100 MB).
    pub max_memory: usize,
    /// Phase-1 insert count (paper: 700,000).
    pub phase1_keys: usize,
    /// Phase-1 value size (paper: 240).
    pub phase1_value_len: usize,
    /// Phase-2 insert count (paper: 170,000).
    pub phase2_keys: usize,
    /// Phase-2 value size (paper: 492).
    pub phase2_value_len: usize,
    /// Victim selection (default: Redis's sampled LRU with 5 samples).
    pub eviction: EvictionPolicy,
    /// Run application-level defragmentation during the idle phase.
    pub activedefrag: bool,
    /// Defrag batch size (keys copied per rate-limited step).
    pub defrag_batch: usize,
    /// Idle-phase meshing ticks (each tick = one rate-limiter period).
    pub idle_ticks: usize,
    /// Record a sample every this many operations.
    pub sample_every: usize,
    /// PRNG seed for key ordering.
    pub seed: u64,
}

impl Default for RedisConfig {
    fn default() -> Self {
        RedisConfig::paper().scaled(0.1)
    }
}

impl RedisConfig {
    /// The paper's exact parameters (§6.2.2).
    pub fn paper() -> Self {
        RedisConfig {
            max_memory: 100 << 20,
            phase1_keys: 700_000,
            phase1_value_len: 240,
            phase2_keys: 170_000,
            phase2_value_len: 492,
            eviction: EvictionPolicy::SampledLru { samples: 5 },
            activedefrag: false,
            defrag_batch: 10_000,
            idle_ticks: 10,
            sample_every: 5_000,
            seed: 0x7ed15,
        }
    }

    /// Scales key counts and the memory cap by `factor` (value sizes stay
    /// fixed so size-class behaviour is unchanged).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.max_memory = (self.max_memory as f64 * factor) as usize;
        self.phase1_keys = (self.phase1_keys as f64 * factor) as usize;
        self.phase2_keys = (self.phase2_keys as f64 * factor) as usize;
        self.defrag_batch = ((self.defrag_batch as f64 * factor) as usize).max(100);
        self.sample_every = ((self.sample_every as f64 * factor) as usize).max(100);
        self
    }

    /// Enables the activedefrag idle phase.
    pub fn with_activedefrag(mut self, on: bool) -> Self {
        self.activedefrag = on;
        self
    }

    /// Overrides the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }
}

/// Results of one Redis run.
#[derive(Debug, Clone)]
pub struct RedisReport {
    /// Allocator label plus defrag marker.
    pub label: String,
    /// The Figure 7 memory timeline.
    pub timeline: MemoryTimeline,
    /// Wall time of the phase-1 inserts.
    pub phase1_time: Duration,
    /// Wall time of the phase-2 inserts.
    pub phase2_time: Duration,
    /// Total compaction time: defrag copying or meshing passes (§6.2.2
    /// compares 1.49 s of defrag against 0.23 s of meshing).
    pub compaction_time: Duration,
    /// Longest single compaction pause (paper: 22 ms for meshing).
    pub longest_pause: Duration,
    /// Heap footprint after the idle phase.
    pub final_heap_bytes: usize,
    /// Live value bytes at the end.
    pub final_live_bytes: usize,
}

/// One cache entry's allocations: the value plus Redis-style metadata.
struct Entry {
    value_ptr: usize,
    value_len: usize,
    key_ptr: usize,
    robj_ptr: usize,
    dict_ptr: usize,
    /// Insertion sequence number — the "LRU clock" for a write-only cache.
    seq: u64,
    /// Index of this key in `Store::keys` (for O(1) sampling/removal).
    idx: usize,
}

struct Store {
    entries: HashMap<u64, Entry>,
    /// Dense key list for O(1) random sampling; `Entry::idx` points here.
    keys: Vec<u64>,
    value_bytes: usize,
    seq: u64,
}

impl Store {
    fn new() -> Store {
        Store {
            entries: HashMap::new(),
            keys: Vec::new(),
            value_bytes: 0,
            seq: 0,
        }
    }

    /// Frees every allocation of `key` and unlinks it. Returns whether the
    /// key existed.
    fn remove(&mut self, alloc: &mut TestAllocator, key: u64) -> bool {
        let Some(entry) = self.entries.remove(&key) else {
            return false;
        };
        // Integrity check: the first value bytes still hold the key. This
        // catches any corruption introduced by meshing's object copies.
        let stored = unsafe { std::ptr::read_unaligned(entry.value_ptr as *const u64) };
        assert_eq!(stored, key, "value corrupted for key {key}");
        unsafe {
            alloc.free(entry.value_ptr as *mut u8);
            alloc.free(entry.key_ptr as *mut u8);
            alloc.free(entry.robj_ptr as *mut u8);
            alloc.free(entry.dict_ptr as *mut u8);
        }
        self.value_bytes -= entry.value_len;
        // Swap-remove from the dense key list, fixing the moved key's idx.
        let last = self.keys.pop().expect("keys and entries in sync");
        if last != key {
            self.keys[entry.idx] = last;
            self.entries
                .get_mut(&last)
                .expect("moved key is live")
                .idx = entry.idx;
        }
        true
    }

    /// Picks an eviction victim per `policy`.
    fn victim(&self, policy: EvictionPolicy, rng: &mut Rng) -> u64 {
        match policy {
            EvictionPolicy::Fifo => {
                // Oldest live key: minimum sequence number. Kept O(n)-free
                // by scanning a sample of 64 — still effectively FIFO for
                // ablation purposes — except for tiny stores, which scan
                // everything.
                let sample = 64.min(self.keys.len());
                (0..sample)
                    .map(|_| self.keys[rng.below(self.keys.len() as u32) as usize])
                    .min_by_key(|k| self.entries[k].seq)
                    .expect("store is non-empty")
            }
            EvictionPolicy::SampledLru { samples } => (0..samples.max(1))
                .map(|_| self.keys[rng.below(self.keys.len() as u32) as usize])
                .min_by_key(|k| self.entries[k].seq)
                .expect("store is non-empty"),
        }
    }

    /// Inserts `key` with a `len`-byte value, evicting per `policy` until
    /// the value fits under `max_memory`.
    fn insert(
        &mut self,
        alloc: &mut TestAllocator,
        key: u64,
        len: usize,
        max_memory: usize,
        policy: EvictionPolicy,
        rng: &mut Rng,
    ) {
        self.remove(alloc, key);
        while self.value_bytes + len > max_memory {
            let victim = self.victim(policy, rng);
            let existed = self.remove(alloc, victim);
            debug_assert!(existed, "victim {victim} vanished");
        }
        // The value, touched end to end so its pages are really dirtied.
        let value_ptr = alloc.malloc(len);
        unsafe {
            std::ptr::write_unaligned(value_ptr as *mut u64, key);
            std::ptr::write_bytes(value_ptr.add(8), (key % 251) as u8, len - 8);
        }
        // Redis-style per-entry metadata: key sds, robj wrapper, dictEntry.
        let key_ptr = alloc.malloc(KEY_SDS_BYTES);
        let robj_ptr = alloc.malloc(ROBJ_BYTES);
        let dict_ptr = alloc.malloc(DICT_ENTRY_BYTES);
        unsafe {
            std::ptr::write_unaligned(key_ptr as *mut u64, key);
            std::ptr::write_unaligned(robj_ptr as *mut u64, value_ptr as u64);
            std::ptr::write_unaligned(dict_ptr as *mut u64, robj_ptr as u64);
        }
        self.seq += 1;
        let idx = self.keys.len();
        self.keys.push(key);
        self.entries.insert(
            key,
            Entry {
                value_ptr: value_ptr as usize,
                value_len: len,
                key_ptr: key_ptr as usize,
                robj_ptr: robj_ptr as usize,
                dict_ptr: dict_ptr as usize,
                seq: self.seq,
                idx,
            },
        );
        self.value_bytes += len;
    }
}

/// Runs the Redis cache benchmark against `alloc`.
pub fn run_redis(alloc: &mut TestAllocator, cfg: &RedisConfig) -> RedisReport {
    let defrag_label = if cfg.activedefrag { " + activedefrag" } else { "" };
    let label = format!("{}{}", alloc.kind().label(), defrag_label);
    let mut timeline = MemoryTimeline::start(label.clone());
    let mut rng = Rng::with_seed(cfg.seed);
    let mut store = Store::new();
    let mut ops = 0usize;
    let sample = |alloc: &TestAllocator, timeline: &mut MemoryTimeline| {
        timeline.record(
            alloc.heap_bytes().unwrap_or(0),
            alloc.live_bytes(),
        );
    };

    // Phase 1: 700k random keys, 240-byte values.
    let t0 = Instant::now();
    let mut next_key = 0u64;
    for _ in 0..cfg.phase1_keys {
        // Mostly-fresh keys with occasional overwrites, like the suite's
        // random key pattern.
        let key = if rng.chance(1, 16) && next_key > 0 {
            rng.next_u64() % next_key
        } else {
            next_key += 1;
            next_key
        };
        store.insert(alloc, key, cfg.phase1_value_len, cfg.max_memory, cfg.eviction, &mut rng);
        ops += 1;
        if ops.is_multiple_of(cfg.sample_every) {
            sample(alloc, &mut timeline);
        }
    }
    let phase1_time = t0.elapsed();
    sample(alloc, &mut timeline);

    // Phase 2: 170k new keys, 492-byte values (each evicts ~2 of the
    // 240-byte values at scattered offsets, shredding that size class).
    let t1 = Instant::now();
    for _ in 0..cfg.phase2_keys {
        next_key += 1;
        store.insert(alloc, next_key, cfg.phase2_value_len, cfg.max_memory, cfg.eviction, &mut rng);
        ops += 1;
        if ops.is_multiple_of(cfg.sample_every) {
            sample(alloc, &mut timeline);
        }
    }
    let phase2_time = t1.elapsed();
    sample(alloc, &mut timeline);

    // Idle phase: defragment (application-level) or mesh (allocator-level).
    let mut compaction_time = Duration::ZERO;
    let mut longest_pause = Duration::ZERO;
    if cfg.activedefrag {
        // Redis-style defrag: copy every live entry (value and metadata)
        // to fresh allocations in rate-limited batches, hoping the
        // allocator packs them densely.
        let keys: Vec<u64> = store.keys.clone();
        for batch in keys.chunks(cfg.defrag_batch.max(1)) {
            let t = Instant::now();
            for &key in batch {
                let Some(entry) = store.entries.get(&key) else {
                    continue;
                };
                let (old_value, len) = (entry.value_ptr, entry.value_len);
                let (old_key_sds, old_robj, old_dict) =
                    (entry.key_ptr, entry.robj_ptr, entry.dict_ptr);
                let value = alloc.malloc(len);
                let key_sds = alloc.malloc(KEY_SDS_BYTES);
                let robj = alloc.malloc(ROBJ_BYTES);
                let dict = alloc.malloc(DICT_ENTRY_BYTES);
                unsafe {
                    std::ptr::copy_nonoverlapping(old_value as *const u8, value, len);
                    std::ptr::copy_nonoverlapping(
                        old_key_sds as *const u8,
                        key_sds,
                        KEY_SDS_BYTES,
                    );
                    std::ptr::copy_nonoverlapping(old_robj as *const u8, robj, ROBJ_BYTES);
                    std::ptr::copy_nonoverlapping(
                        old_dict as *const u8,
                        dict,
                        DICT_ENTRY_BYTES,
                    );
                    alloc.free(old_value as *mut u8);
                    alloc.free(old_key_sds as *mut u8);
                    alloc.free(old_robj as *mut u8);
                    alloc.free(old_dict as *mut u8);
                }
                let entry = store.entries.get_mut(&key).expect("entry is live");
                entry.value_ptr = value as usize;
                entry.key_ptr = key_sds as usize;
                entry.robj_ptr = robj as usize;
                entry.dict_ptr = dict as usize;
            }
            let pause = t.elapsed();
            compaction_time += pause;
            longest_pause = longest_pause.max(pause);
            sample(alloc, &mut timeline);
        }
        // Let the allocator give freed spans back.
        alloc.purge();
        sample(alloc, &mut timeline);
    } else {
        for _ in 0..cfg.idle_ticks {
            let t = Instant::now();
            alloc.mesh_now();
            let pause = t.elapsed();
            compaction_time += pause;
            longest_pause = longest_pause.max(pause);
            sample(alloc, &mut timeline);
        }
    }

    let report = RedisReport {
        label,
        phase1_time,
        phase2_time,
        compaction_time,
        longest_pause,
        final_heap_bytes: alloc.heap_bytes().unwrap_or(0),
        final_live_bytes: alloc.live_bytes(),
        timeline,
    };

    // Tear down the store so the driver ends balanced.
    let keys: Vec<u64> = store.keys.clone();
    for key in keys {
        store.remove(alloc, key);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::AllocatorKind;

    fn tiny() -> RedisConfig {
        RedisConfig::paper().scaled(0.01) // 7k + 1.7k keys, 1 MB cap
    }

    #[test]
    fn lru_cap_is_respected() {
        let mut alloc = AllocatorKind::MeshNoMesh.build(256 << 20, 1);
        let cfg = tiny();
        let report = run_redis(&mut alloc, &cfg);
        // live_bytes counts size-class-rounded allocations (240 → 256,
        // 492 → 512) plus per-entry metadata (~80 B), so allow that
        // overhead factor over the raw-value cap.
        assert!(report.final_live_bytes <= cfg.max_memory * 8 / 5);
        assert!(report.timeline.len() > 2);
        assert_eq!(alloc.live_bytes(), 0, "teardown freed everything");
    }

    #[test]
    fn sampled_lru_evicts_approximately_oldest() {
        let mut alloc = AllocatorKind::MeshNoMesh.build(64 << 20, 7);
        let mut store = Store::new();
        let mut rng = Rng::with_seed(9);
        let policy = EvictionPolicy::SampledLru { samples: 5 };
        // Fill to exactly the cap, then one more insert forces evictions.
        for key in 0..1000u64 {
            store.insert(&mut alloc, key, 1000, 1_000_000, policy, &mut rng);
        }
        store.insert(&mut alloc, 5000, 1000, 1_000_000, policy, &mut rng);
        // The victim should be an old key: with 5 samples the expected
        // victim age is in the oldest ~1/6 of the population; even a very
        // unlucky draw stays in the older half.
        assert!(store.entries.contains_key(&5000));
        let survivors_over_500 = (500..1000).filter(|k| store.entries.contains_key(k)).count();
        assert!(
            survivors_over_500 >= 499,
            "sampled LRU evicted a recent key ({survivors_over_500}/500 recent survivors)"
        );
        let keys: Vec<u64> = store.keys.clone();
        for key in keys {
            store.remove(&mut alloc, key);
        }
        assert_eq!(alloc.live_bytes(), 0);
    }

    #[test]
    fn store_swap_remove_keeps_indices_consistent() {
        let mut alloc = AllocatorKind::MeshNoMesh.build(64 << 20, 8);
        let mut store = Store::new();
        let mut rng = Rng::with_seed(10);
        let policy = EvictionPolicy::SampledLru { samples: 5 };
        for key in 0..100u64 {
            store.insert(&mut alloc, key, 100, usize::MAX, policy, &mut rng);
        }
        // Remove from the middle and verify every idx still round-trips.
        for key in (0..100u64).step_by(3) {
            assert!(store.remove(&mut alloc, key));
        }
        for (&key, entry) in &store.entries {
            assert_eq!(store.keys[entry.idx], key, "idx out of sync for {key}");
        }
        let keys: Vec<u64> = store.keys.clone();
        for key in keys {
            store.remove(&mut alloc, key);
        }
        assert_eq!(store.value_bytes, 0);
    }

    #[test]
    fn lru_cap_is_respected_under_meshing() {
        let mut alloc = AllocatorKind::MeshFull.build(256 << 20, 2);
        let cfg = tiny();
        let report = run_redis(&mut alloc, &cfg);
        assert!(report.final_live_bytes <= cfg.max_memory * 8 / 5);
        assert_eq!(alloc.live_bytes(), 0, "teardown freed everything");
    }

    #[test]
    fn meshing_reduces_final_heap_vs_no_meshing() {
        let cfg = tiny();
        let mut base = AllocatorKind::MeshNoMesh.build(256 << 20, 2);
        let r_base = run_redis(&mut base, &cfg);
        let mut full = AllocatorKind::MeshFull.build(256 << 20, 2);
        let r_full = run_redis(&mut full, &cfg);
        assert!(
            r_full.final_heap_bytes < r_base.final_heap_bytes,
            "mesh {} !< baseline {}",
            r_full.final_heap_bytes,
            r_base.final_heap_bytes
        );
    }

    #[test]
    fn activedefrag_also_reduces_heap_but_copies_more() {
        let cfg = tiny().with_activedefrag(true);
        let mut alloc = AllocatorKind::MeshNoMesh.build(256 << 20, 3);
        let with_defrag = run_redis(&mut alloc, &cfg);
        let mut alloc2 = AllocatorKind::MeshNoMesh.build(256 << 20, 3);
        let without = run_redis(&mut alloc2, &cfg.clone().with_activedefrag(false));
        assert!(
            with_defrag.final_heap_bytes <= without.final_heap_bytes,
            "defrag should not increase the final footprint"
        );
        assert!(with_defrag.compaction_time > Duration::ZERO);
    }

    #[test]
    fn value_integrity_maintained_under_meshing() {
        // The Store asserts key == first 8 value bytes on every removal;
        // running with aggressive meshing exercises object copies.
        let mut alloc = AllocatorKind::MeshFull.build(256 << 20, 4);
        if let Some(m) = alloc.mesh_handle() {
            m.set_mesh_period(Duration::ZERO); // mesh at every opportunity
        }
        let report = run_redis(&mut alloc, &tiny());
        assert!(report.timeline.peak_heap_bytes() > 0);
    }

    #[test]
    fn fifo_eviction_is_available_for_ablation() {
        let cfg = tiny().with_eviction(EvictionPolicy::Fifo);
        let mut alloc = AllocatorKind::MeshNoMesh.build(256 << 20, 5);
        let report = run_redis(&mut alloc, &cfg);
        assert!(report.final_heap_bytes > 0);
        assert_eq!(alloc.live_bytes(), 0);
    }
}
