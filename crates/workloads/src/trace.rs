//! Allocation-trace recording and replay.
//!
//! The paper's methodology is trace-shaped: every §6 workload is, from
//! the allocator's point of view, a stream of `malloc(size)` / `free(ptr)`
//! events. This module makes that stream a first-class artifact:
//!
//! * [`Trace`] — an ordered list of malloc/free events over abstract
//!   object ids, with a line-oriented text format for storage and
//!   exchange;
//! * [`Trace::validate`] / [`Trace::stats`] — well-formedness checking
//!   and the summary statistics that characterize a workload (peak live
//!   bytes, size-class histogram, lifetime distribution);
//! * [`replay`] — runs a trace against any [`TestAllocator`], measuring
//!   the footprint the allocator needs for it;
//! * [`generate`] — parameterized synthetic generators (steady churn and
//!   phased sawtooth) matching the §6 workload shapes.
//!
//! Replaying one fixed trace against Mesh, Mesh-without-meshing, and the
//! simulated classical allocators is the cleanest apples-to-apples
//! fragmentation comparison this repository offers: identical input
//! stream, different placement policies.

use crate::driver::TestAllocator;
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// One allocation-trace event over abstract object ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Allocate `size` bytes and bind them to `id`.
    Malloc {
        /// Object id; must not be live at this point.
        id: u64,
        /// Requested size in bytes.
        size: usize,
    },
    /// Free the object bound to `id`.
    Free {
        /// Object id; must be live at this point.
        id: u64,
    },
}

/// A recorded allocation trace.
///
/// # Examples
///
/// ```
/// use mesh_workloads::trace::{Trace, TraceEvent};
///
/// let trace = Trace::from_events(vec![
///     TraceEvent::Malloc { id: 1, size: 64 },
///     TraceEvent::Malloc { id: 2, size: 128 },
///     TraceEvent::Free { id: 1 },
/// ]);
/// assert!(trace.validate().is_ok());
/// assert_eq!(trace.stats().peak_live_bytes, 192);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// A trace well-formedness violation, with the offending event index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// `Malloc` for an id that is already live.
    DuplicateId {
        /// Event index.
        at: usize,
        /// The offending id.
        id: u64,
    },
    /// `Free` for an id that is not live.
    FreeUnknown {
        /// Event index.
        at: usize,
        /// The offending id.
        id: u64,
    },
    /// `Malloc` with `size == 0`.
    ZeroSize {
        /// Event index.
        at: usize,
    },
    /// Text parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::DuplicateId { at, id } => {
                write!(f, "event {at}: malloc of already-live id {id}")
            }
            TraceError::FreeUnknown { at, id } => {
                write!(f, "event {at}: free of non-live id {id}")
            }
            TraceError::ZeroSize { at } => write!(f, "event {at}: zero-size malloc"),
            TraceError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Summary statistics of a trace (its workload signature).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total events.
    pub events: usize,
    /// Malloc events.
    pub mallocs: usize,
    /// Free events.
    pub frees: usize,
    /// Peak of summed live sizes.
    pub peak_live_bytes: usize,
    /// Live bytes after the last event.
    pub final_live_bytes: usize,
    /// Mean object size over all mallocs.
    pub mean_size: f64,
    /// Mean lifetime (in events) of freed objects.
    pub mean_lifetime_events: f64,
}

impl Trace {
    /// Wraps an event list.
    pub fn from_events(events: Vec<TraceEvent>) -> Trace {
        Trace { events }
    }

    /// The events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a malloc event.
    pub fn push_malloc(&mut self, id: u64, size: usize) {
        self.events.push(TraceEvent::Malloc { id, size });
    }

    /// Appends a free event.
    pub fn push_free(&mut self, id: u64) {
        self.events.push(TraceEvent::Free { id });
    }

    /// Checks well-formedness: ids are unique while live, frees refer to
    /// live ids, sizes are non-zero.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered, with its event index.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut live: HashMap<u64, usize> = HashMap::new();
        for (at, ev) in self.events.iter().enumerate() {
            match *ev {
                TraceEvent::Malloc { id, size } => {
                    if size == 0 {
                        return Err(TraceError::ZeroSize { at });
                    }
                    if live.insert(id, size).is_some() {
                        return Err(TraceError::DuplicateId { at, id });
                    }
                }
                TraceEvent::Free { id } => {
                    if live.remove(&id).is_none() {
                        return Err(TraceError::FreeUnknown { at, id });
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes the trace's summary statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        let mut live: HashMap<u64, (usize, usize)> = HashMap::new(); // id → (size, birth)
        let mut live_bytes = 0usize;
        let mut peak = 0usize;
        let mut mallocs = 0usize;
        let mut frees = 0usize;
        let mut size_sum = 0usize;
        let mut lifetime_sum = 0usize;
        for (at, ev) in self.events.iter().enumerate() {
            match *ev {
                TraceEvent::Malloc { id, size } => {
                    mallocs += 1;
                    size_sum += size;
                    live.insert(id, (size, at));
                    live_bytes += size;
                    peak = peak.max(live_bytes);
                }
                TraceEvent::Free { id } => {
                    if let Some((size, birth)) = live.remove(&id) {
                        frees += 1;
                        live_bytes -= size;
                        lifetime_sum += at - birth;
                    }
                }
            }
        }
        TraceStats {
            events: self.events.len(),
            mallocs,
            frees,
            peak_live_bytes: peak,
            final_live_bytes: live_bytes,
            mean_size: if mallocs > 0 {
                size_sum as f64 / mallocs as f64
            } else {
                0.0
            },
            mean_lifetime_events: if frees > 0 {
                lifetime_sum as f64 / frees as f64
            } else {
                0.0
            },
        }
    }

    /// Serializes to the line format: `m <id> <size>` / `f <id>`, one
    /// event per line, `#`-prefixed comment lines allowed.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 12);
        out.push_str("# mesh allocation trace v1\n");
        for ev in &self.events {
            match *ev {
                TraceEvent::Malloc { id, size } => {
                    out.push_str(&format!("m {id} {size}\n"));
                }
                TraceEvent::Free { id } => out.push_str(&format!("f {id}\n")),
            }
        }
        out
    }

    /// Parses the [`Trace::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] with the offending line number.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let parse = |tok: Option<&str>, what: &str| {
                tok.ok_or_else(|| TraceError::Parse {
                    line: i + 1,
                    reason: format!("missing {what}"),
                })
                .and_then(|t| {
                    t.parse::<u64>().map_err(|_| TraceError::Parse {
                        line: i + 1,
                        reason: format!("bad {what} `{t}`"),
                    })
                })
            };
            match parts.next() {
                Some("m") => {
                    let id = parse(parts.next(), "id")?;
                    let size = parse(parts.next(), "size")? as usize;
                    events.push(TraceEvent::Malloc { id, size });
                }
                Some("f") => {
                    let id = parse(parts.next(), "id")?;
                    events.push(TraceEvent::Free { id });
                }
                Some(tok) => {
                    return Err(TraceError::Parse {
                        line: i + 1,
                        reason: format!("unknown op `{tok}`"),
                    })
                }
                None => unreachable!("blank lines were skipped"),
            }
        }
        Ok(Trace { events })
    }
}

/// Report from replaying a trace against an allocator.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Allocator label.
    pub allocator: String,
    /// Peak heap footprint observed at sample points.
    pub peak_heap_bytes: usize,
    /// Heap footprint after the last event.
    pub final_heap_bytes: usize,
    /// Peak live (requested, class-rounded) bytes.
    pub peak_live_bytes: usize,
    /// Wall time of the replay.
    pub elapsed: Duration,
}

impl ReplayReport {
    /// Fragmentation factor at peak: heap the allocator needed per live
    /// byte (1.0 = perfect).
    pub fn peak_fragmentation(&self) -> f64 {
        self.peak_heap_bytes as f64 / self.peak_live_bytes.max(1) as f64
    }
}

/// Replays `trace` against `alloc`, sampling the footprint every
/// `sample_every` events (and at the end).
///
/// # Panics
///
/// Panics if the trace is not well-formed (run [`Trace::validate`]
/// first for a `Result`) or if the allocator's arena is exhausted.
pub fn replay(trace: &Trace, alloc: &mut TestAllocator, sample_every: usize) -> ReplayReport {
    let start = Instant::now();
    let mut ptrs: HashMap<u64, usize> = HashMap::new();
    let mut peak_heap = 0usize;
    let mut peak_live = 0usize;
    let gap = sample_every.max(1);
    for (at, ev) in trace.events().iter().enumerate() {
        match *ev {
            TraceEvent::Malloc { id, size } => {
                let p = alloc.malloc(size);
                unsafe { std::ptr::write_bytes(p, 0x7A, size.min(16)) };
                let prev = ptrs.insert(id, p as usize);
                assert!(prev.is_none(), "trace event {at}: duplicate live id {id}");
            }
            TraceEvent::Free { id } => {
                let p = ptrs.remove(&id).unwrap_or_else(|| {
                    panic!("trace event {at}: free of non-live id {id}")
                });
                unsafe { alloc.free(p as *mut u8) };
            }
        }
        if at % gap == gap - 1 {
            peak_heap = peak_heap.max(alloc.heap_bytes().unwrap_or(0));
            peak_live = peak_live.max(alloc.live_bytes());
        }
    }
    peak_heap = peak_heap.max(alloc.heap_bytes().unwrap_or(0));
    peak_live = peak_live.max(alloc.live_bytes());
    let final_heap = alloc.heap_bytes().unwrap_or(0);
    // Leave the allocator balanced for reuse.
    for (_, p) in ptrs.drain() {
        unsafe { alloc.free(p as *mut u8) };
    }
    ReplayReport {
        allocator: alloc.kind().label().to_string(),
        peak_heap_bytes: peak_heap,
        final_heap_bytes: final_heap,
        peak_live_bytes: peak_live,
        elapsed: start.elapsed(),
    }
}

/// Parameterized synthetic trace generators matching the §6 shapes.
pub mod generate {
    use super::{Trace, TraceEvent};
    use mesh_core::rng::Rng;

    /// Steady churn: ramp `live_count` objects of sizes in
    /// `[min_size, max_size]`, then `churn_ops` replace-one operations.
    pub fn steady_churn(
        live_count: usize,
        min_size: usize,
        max_size: usize,
        churn_ops: usize,
        seed: u64,
    ) -> Trace {
        let mut rng = Rng::with_seed(seed);
        let size = move |rng: &mut Rng| {
            min_size + rng.below((max_size - min_size + 1) as u32) as usize
        };
        let mut events = Vec::new();
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..live_count {
            next_id += 1;
            events.push(TraceEvent::Malloc { id: next_id, size: size(&mut rng) });
            live.push(next_id);
        }
        for _ in 0..churn_ops {
            let at = rng.below(live.len() as u32) as usize;
            let victim = live.swap_remove(at);
            events.push(TraceEvent::Free { id: victim });
            next_id += 1;
            events.push(TraceEvent::Malloc { id: next_id, size: size(&mut rng) });
            live.push(next_id);
        }
        for id in live {
            events.push(TraceEvent::Free { id });
        }
        Trace::from_events(events)
    }

    /// Phased sawtooth: `phases` rounds of allocating `per_phase` objects
    /// then freeing all but `survivor_permille`‰ of them at random —
    /// the fragmentation-producing shape of §6's Ruby and perlbench
    /// workloads. Survivors are freed at the very end, so the trace is
    /// balanced.
    pub fn sawtooth(
        phases: usize,
        per_phase: usize,
        min_size: usize,
        max_size: usize,
        survivor_permille: u32,
        seed: u64,
    ) -> Trace {
        let mut trace = sawtooth_pinned(
            phases,
            per_phase,
            min_size,
            max_size,
            survivor_permille,
            seed,
        );
        let mut live: Vec<u64> = Vec::new();
        {
            let mut set = std::collections::HashSet::new();
            for ev in trace.events() {
                match *ev {
                    TraceEvent::Malloc { id, .. } => {
                        set.insert(id);
                    }
                    TraceEvent::Free { id } => {
                        set.remove(&id);
                    }
                }
            }
            live.extend(set);
            live.sort_unstable();
        }
        for id in live {
            trace.push_free(id);
        }
        trace
    }

    /// The sawtooth shape with survivors left **live** at the end of the
    /// trace. Replaying this and comparing the final footprint against
    /// the final live bytes measures exactly the pinned-span waste that
    /// compaction exists to reclaim (the survivors hold scattered slots
    /// across every phase's spans).
    pub fn sawtooth_pinned(
        phases: usize,
        per_phase: usize,
        min_size: usize,
        max_size: usize,
        survivor_permille: u32,
        seed: u64,
    ) -> Trace {
        let mut rng = Rng::with_seed(seed);
        let mut events = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..phases {
            let mut phase_ids = Vec::with_capacity(per_phase);
            for _ in 0..per_phase {
                next_id += 1;
                let size =
                    min_size + rng.below((max_size - min_size + 1) as u32) as usize;
                events.push(TraceEvent::Malloc { id: next_id, size });
                phase_ids.push(next_id);
            }
            for id in phase_ids {
                if !rng.chance(survivor_permille, 1000) {
                    events.push(TraceEvent::Free { id });
                }
            }
        }
        Trace::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::AllocatorKind;

    fn small_trace() -> Trace {
        Trace::from_events(vec![
            TraceEvent::Malloc { id: 1, size: 100 },
            TraceEvent::Malloc { id: 2, size: 200 },
            TraceEvent::Free { id: 1 },
            TraceEvent::Malloc { id: 3, size: 50 },
            TraceEvent::Free { id: 2 },
            TraceEvent::Free { id: 3 },
        ])
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(small_trace().validate().is_ok());
        assert!(Trace::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_double_malloc() {
        let t = Trace::from_events(vec![
            TraceEvent::Malloc { id: 1, size: 8 },
            TraceEvent::Malloc { id: 1, size: 8 },
        ]);
        assert_eq!(t.validate(), Err(TraceError::DuplicateId { at: 1, id: 1 }));
    }

    #[test]
    fn validate_rejects_stray_free_and_zero_size() {
        let t = Trace::from_events(vec![TraceEvent::Free { id: 9 }]);
        assert_eq!(t.validate(), Err(TraceError::FreeUnknown { at: 0, id: 9 }));
        let t = Trace::from_events(vec![TraceEvent::Malloc { id: 1, size: 0 }]);
        assert_eq!(t.validate(), Err(TraceError::ZeroSize { at: 0 }));
    }

    #[test]
    fn id_reuse_after_free_is_legal() {
        let t = Trace::from_events(vec![
            TraceEvent::Malloc { id: 1, size: 8 },
            TraceEvent::Free { id: 1 },
            TraceEvent::Malloc { id: 1, size: 16 },
            TraceEvent::Free { id: 1 },
        ]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn stats_track_peak_and_lifetimes() {
        let s = small_trace().stats();
        assert_eq!(s.mallocs, 3);
        assert_eq!(s.frees, 3);
        assert_eq!(s.peak_live_bytes, 300);
        assert_eq!(s.final_live_bytes, 0);
        assert!((s.mean_size - 350.0 / 3.0).abs() < 1e-9);
        // Lifetimes: id1 lives 0→2 (2), id2 1→4 (3), id3 3→5 (2).
        assert!((s.mean_lifetime_events - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn text_round_trip() {
        let t = small_trace();
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Trace::from_text("m 1 8\nx 2\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::Parse { line: 2, reason: "unknown op `x`".into() }
        );
        let err = Trace::from_text("m 1\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
        let err = Trace::from_text("f abc\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = Trace::from_text("# hi\n\nm 5 32\n  \nf 5\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replay_runs_against_mesh() {
        let trace = generate::steady_churn(500, 16, 512, 2_000, 11);
        trace.validate().unwrap();
        let mut alloc = AllocatorKind::MeshFull.build(64 << 20, 11);
        let report = replay(&trace, &mut alloc, 100);
        assert!(report.peak_heap_bytes > 0);
        assert!(report.peak_fragmentation() >= 1.0);
        assert_eq!(alloc.live_bytes(), 0, "replay left the heap balanced");
    }

    #[test]
    fn sawtooth_fragmentation_is_visible_to_replay() {
        // The same trace replayed with and without meshing: the sawtooth
        // shape leaves scattered survivors, which meshing compacts.
        let trace = generate::sawtooth(6, 4_000, 64, 64, 50, 12);
        trace.validate().unwrap();
        let mut base = AllocatorKind::MeshNoMesh.build(256 << 20, 12);
        let rb = replay(&trace, &mut base, 500);
        let mut mesh = AllocatorKind::MeshFull.build(256 << 20, 12);
        let rm = replay(&trace, &mut mesh, 500);
        assert!(
            rm.peak_heap_bytes <= rb.peak_heap_bytes,
            "meshing should not need more memory: {} vs {}",
            rm.peak_heap_bytes,
            rb.peak_heap_bytes
        );
    }

    #[test]
    fn generators_produce_valid_traces() {
        for seed in 0..5 {
            generate::steady_churn(100, 16, 128, 500, seed).validate().unwrap();
            generate::sawtooth(4, 200, 32, 256, 250, seed).validate().unwrap();
            generate::sawtooth_pinned(4, 200, 32, 256, 250, seed)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn sawtooth_balanced_but_pinned_leaves_survivors() {
        let balanced = generate::sawtooth(3, 500, 64, 64, 100, 9);
        assert_eq!(balanced.stats().final_live_bytes, 0);
        let pinned = generate::sawtooth_pinned(3, 500, 64, 64, 100, 9);
        let stats = pinned.stats();
        assert!(stats.final_live_bytes > 0, "survivors must stay live");
        // ~10% of 1500 objects of 64 B.
        assert!(stats.final_live_bytes < 3 * 1500 * 64 / 10);
    }

    #[test]
    fn replay_report_fragmentation_math() {
        let r = ReplayReport {
            allocator: "x".into(),
            peak_heap_bytes: 150,
            final_heap_bytes: 10,
            peak_live_bytes: 100,
            elapsed: Duration::ZERO,
        };
        assert!((r.peak_fragmentation() - 1.5).abs() < 1e-12);
    }
}
