//! The SPECint-style benchmark suite (§6.2.3).
//!
//! SPEC CPU2006 itself is proprietary, so each member is modelled as a
//! synthetic allocation trace with the properties the paper highlights:
//! most members have small footprints and barely exercise the allocator
//! (Mesh should be near-neutral on memory and time), while
//! allocation-intensive members with large footprints — notably
//! `400.perlbench` — fragment badly and give Mesh a double-digit peak-RSS
//! reduction (the paper reports −15% peak at +3.9% runtime for
//! perlbench, and a −2.4% / +0.7% geomean across the suite).
//!
//! Each profile specifies a live-set target, an object-size mixture, a
//! churn count, and how much of the live set dies in the trailing phase
//! (fragmentation opportunity). Footprints are scaled down ~10× from the
//! real suite so the whole table regenerates in seconds.
//!
//! **Meshing cadence under time compression.** The real benchmarks run for
//! minutes, so the 100 ms wall-clock rate limit gives Mesh thousands of
//! passes, each trimming the little waste that accrued since the last one
//! — which is how the paper's *peak* RSS stays low. These traces replay
//! the same allocation work in under a second; at wall-clock cadence only
//! a handful of passes fit and waste regrows faster than it is trimmed.
//! The driver therefore paces meshing in *logical time*: one pass every
//! `churn_ops / 64` operations, preserving the paper's passes-per-work
//! ratio (and making runs deterministic, since passes no longer depend on
//! the host's clock).

use crate::driver::{AllocatorKind, TestAllocator};
use crate::mstat::{geomean, MemoryTimeline};
use mesh_core::rng::Rng;
use std::time::{Duration, Instant};

/// An object-size mixture: weighted uniform ranges.
#[derive(Debug, Clone, Copy)]
pub struct SizeMix(pub &'static [(u32, usize, usize)]);

impl SizeMix {
    /// Draws a size from the mixture.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total: u32 = self.0.iter().map(|(w, _, _)| w).sum();
        let mut pick = rng.below(total);
        for &(w, lo, hi) in self.0 {
            if pick < w {
                return lo + rng.below((hi - lo + 1) as u32) as usize;
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// A synthetic allocation profile standing in for one SPEC member.
///
/// Two trace shapes are expressible:
///
/// * **Steady churn** (`phases == 0`): ramp to `live_target`, then
///   replace-one churn. Models benchmarks whose live set is stable; span
///   occupancy stays near `live/heap`, which is too high for meshing —
///   Mesh should be near-neutral here, as the paper observes for most of
///   the suite.
/// * **Phased sawtooth** (`phases > 0`): on top of a persistent
///   `live_target` base, each phase allocates `phase_temp_bytes` of
///   temporaries and tears them down, with a `survivor_fraction` of them
///   surviving *scattered* into the base — pinning mostly-empty spans.
///   With `size_drift`, successive phases shift the size mixture across
///   size classes (Perl strings, GCC IR), so later phases cannot refill
///   earlier phases' holes and a non-compacting allocator's footprint
///   creeps; this is the §1 Robson mechanism and exactly the
///   fragmentation meshing reclaims. Models the allocation-intensive
///   members (`400.perlbench` above all).
#[derive(Debug, Clone, Copy)]
pub struct SpecProfile {
    /// Benchmark name (SPEC CPU2006 member it models).
    pub name: &'static str,
    /// Persistent live-set target in bytes.
    pub live_target: usize,
    /// Object-size mixture.
    pub sizes: SizeMix,
    /// Churn operations (free a victim + allocate a replacement), spread
    /// evenly across phases when `phases > 0`.
    pub churn_ops: usize,
    /// Number of sawtooth phases (0 = steady churn only).
    pub phases: usize,
    /// Temporary bytes allocated per phase.
    pub phase_temp_bytes: usize,
    /// Fraction of phase temporaries that survive into the base,
    /// scattered across the phase's spans.
    pub survivor_fraction: f64,
    /// Rotate the size mixture across size classes each phase.
    pub size_drift: bool,
    /// Fraction of the live set freed in the trailing phase, creating the
    /// fragmentation meshing can reclaim.
    pub tail_free_fraction: f64,
}

/// A steady-churn profile (no sawtooth phases).
const fn steady(
    name: &'static str,
    live_target: usize,
    sizes: SizeMix,
    churn_ops: usize,
    tail_free_fraction: f64,
) -> SpecProfile {
    SpecProfile {
        name,
        live_target,
        sizes,
        churn_ops,
        phases: 0,
        phase_temp_bytes: 0,
        survivor_fraction: 0.0,
        size_drift: false,
        tail_free_fraction,
    }
}

/// The modelled SPECint 2006 suite.
pub const SPEC_SUITE: &[SpecProfile] = &[
    // The most allocation-intensive member: Perl running e-mail tasks
    // (SpamAssassin). Per-message phases build string/SV temporaries and
    // drop most of them; sizes drift as message contents vary. The paper
    // reports −15% peak RSS at +3.9% runtime under Mesh.
    SpecProfile {
        name: "400.perlbench",
        live_target: 12 << 20,
        sizes: SizeMix(&[(6, 16, 128), (3, 129, 1024), (1, 1025, 4096)]),
        churn_ops: 120_000,
        phases: 12,
        phase_temp_bytes: 20 << 20,
        survivor_fraction: 0.05,
        size_drift: true,
        tail_free_fraction: 0.50,
    },
    steady(
        "401.bzip2",
        24 << 20,
        SizeMix(&[(1, 64 << 10, 256 << 10)]),
        2_000,
        0.10,
    ),
    // GCC: per-translation-unit IR churn with drifting node sizes.
    SpecProfile {
        name: "403.gcc",
        live_target: 8 << 20,
        sizes: SizeMix(&[(5, 16, 512), (2, 513, 4096), (1, 4097, 16 << 10)]),
        churn_ops: 60_000,
        phases: 8,
        phase_temp_bytes: 14 << 20,
        survivor_fraction: 0.04,
        size_drift: true,
        tail_free_fraction: 0.50,
    },
    steady(
        "429.mcf",
        40 << 20,
        SizeMix(&[(1, 128 << 10, 1 << 20)]),
        500,
        0.05,
    ),
    steady(
        "445.gobmk",
        8 << 20,
        SizeMix(&[(4, 16, 256), (1, 257, 2048)]),
        60_000,
        0.30,
    ),
    steady("456.hmmer", 6 << 20, SizeMix(&[(1, 256, 4096)]), 30_000, 0.20),
    steady(
        "458.sjeng",
        4 << 20,
        SizeMix(&[(1, 1 << 20, 4 << 20)]),
        100,
        0.0,
    ),
    steady(
        "462.libquantum",
        8 << 20,
        SizeMix(&[(1, 512 << 10, 2 << 20)]),
        200,
        0.0,
    ),
    steady(
        "464.h264ref",
        12 << 20,
        SizeMix(&[(2, 1024, 16 << 10), (1, 16 << 10, 128 << 10)]),
        10_000,
        0.15,
    ),
    // OMNeT++: discrete-event simulation. Event objects have stable sizes,
    // so freed slots are refilled by the next events and the heap stays
    // dense — meshing is near-neutral, as the paper finds for most
    // members.
    steady(
        "471.omnetpp",
        24 << 20,
        SizeMix(&[(8, 32, 256), (2, 257, 1024)]),
        300_000,
        0.65,
    ),
    steady(
        "473.astar",
        16 << 20,
        SizeMix(&[(3, 64, 1024), (1, 1025, 64 << 10)]),
        50_000,
        0.35,
    ),
    // Xalan: XSLT transforms over a DOM of stable node sizes; like
    // omnetpp, same-class reuse keeps the heap dense without meshing.
    steady(
        "483.xalancbmk",
        24 << 20,
        SizeMix(&[(9, 16, 192), (1, 193, 1024)]),
        350_000,
        0.70,
    ),
];

/// Result of one benchmark × allocator cell.
#[derive(Debug, Clone)]
pub struct SpecResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Allocator label.
    pub allocator: String,
    /// Peak heap footprint (the paper's peak-RSS column).
    pub peak_heap_bytes: usize,
    /// Mean heap footprint across samples.
    pub mean_heap_bytes: f64,
    /// Wall time of the run.
    pub runtime: Duration,
    /// Full timeline (for plotting).
    pub timeline: MemoryTimeline,
}

/// Shifts a sampled size across size classes for drifting phases
/// (cycle of ×1, ×2, ×4).
fn drifted(size: usize, phase: usize, drift: bool) -> usize {
    if drift {
        size << (phase % 3)
    } else {
        size
    }
}

/// Runs one profile against `alloc`.
pub fn run_spec_profile(
    alloc: &mut TestAllocator,
    profile: &SpecProfile,
    seed: u64,
) -> SpecResult {
    let mut rng = Rng::with_seed(seed ^ profile.name.len() as u64);
    let mut timeline = MemoryTimeline::start(profile.name);
    let start = Instant::now();
    let mut live: Vec<(usize, usize)> = Vec::new();
    let mut live_bytes = 0usize;
    let sample =
        |alloc: &TestAllocator, timeline: &mut MemoryTimeline| {
            timeline.record(alloc.heap_bytes().unwrap_or(0), alloc.live_bytes());
        };

    // Ramp the persistent base to the live target.
    while live_bytes < profile.live_target {
        let size = profile.sizes.sample(&mut rng);
        let p = alloc.malloc(size);
        unsafe { std::ptr::write_bytes(p, 0xC3, size.min(64)) };
        live.push((p as usize, size));
        live_bytes += size;
    }
    sample(alloc, &mut timeline);

    let rounds = profile.phases.max(1);
    let churn_per_round = profile.churn_ops / rounds;
    // Meshing paced in logical time (see module docs): the same
    // passes-per-work cadence the wall-clock limiter would give the
    // uncompressed benchmark.
    let mesh_gap = (churn_per_round / 8).max(1);
    for phase in 0..rounds {
        // Sawtooth phase: allocate temporaries on top of the base.
        let mut temps: Vec<(usize, usize)> = Vec::new();
        if profile.phases > 0 {
            let mut temp_bytes = 0usize;
            let sample_at = profile.phase_temp_bytes / 4;
            let mut next_sample = sample_at;
            while temp_bytes < profile.phase_temp_bytes {
                let size = drifted(profile.sizes.sample(&mut rng), phase, profile.size_drift);
                let p = alloc.malloc(size);
                unsafe { std::ptr::write_bytes(p, 0xC4, size.min(64)) };
                temps.push((p as usize, size));
                temp_bytes += size;
                if temp_bytes >= next_sample {
                    sample(alloc, &mut timeline);
                    next_sample += sample_at;
                }
            }
        }

        // Steady churn on the base (replace random victims).
        for op in 0..churn_per_round {
            let victim = rng.below(live.len() as u32) as usize;
            let (ptr, size) = live.swap_remove(victim);
            unsafe { alloc.free(ptr as *mut u8) };
            live_bytes -= size;
            let size = profile.sizes.sample(&mut rng);
            let p = alloc.malloc(size);
            live.push((p as usize, size));
            live_bytes += size;
            if op % mesh_gap == mesh_gap - 1 {
                alloc.mesh_now();
                sample(alloc, &mut timeline);
            }
        }

        // Phase teardown: survivors scatter into the base, the rest die.
        if profile.phases > 0 {
            for (ptr, size) in temps.drain(..) {
                if rng.chance((profile.survivor_fraction * 1000.0) as u32, 1000) {
                    live.push((ptr, size));
                    live_bytes += size;
                } else {
                    unsafe { alloc.free(ptr as *mut u8) };
                }
            }
            alloc.mesh_now();
            sample(alloc, &mut timeline);
        }
    }

    // Tail: a fraction of the live set dies; meshing can now reclaim.
    let to_free = (live.len() as f64 * profile.tail_free_fraction) as usize;
    for _ in 0..to_free {
        let victim = rng.below(live.len() as u32) as usize;
        let (ptr, size) = live.swap_remove(victim);
        unsafe { alloc.free(ptr as *mut u8) };
        live_bytes -= size;
    }
    alloc.mesh_now();
    sample(alloc, &mut timeline);
    let _ = live_bytes;

    // Teardown.
    for (ptr, _) in live.drain(..) {
        unsafe { alloc.free(ptr as *mut u8) };
    }
    let runtime = start.elapsed();
    SpecResult {
        name: profile.name,
        allocator: alloc.kind().label().to_string(),
        peak_heap_bytes: timeline.peak_heap_bytes(),
        mean_heap_bytes: timeline.mean_heap_bytes(),
        runtime,
        timeline,
    }
}

/// A suite-level comparison row: Mesh vs the non-compacting baseline.
#[derive(Debug, Clone)]
pub struct SpecComparison {
    /// Benchmark name.
    pub name: &'static str,
    /// Peak heap under the baseline (glibc stand-in).
    pub baseline_peak: usize,
    /// Peak heap under Mesh.
    pub mesh_peak: usize,
    /// Runtime under the baseline.
    pub baseline_time: Duration,
    /// Runtime under Mesh.
    pub mesh_time: Duration,
}

impl SpecComparison {
    /// Peak-memory ratio Mesh/baseline (< 1 means Mesh saves memory).
    pub fn memory_ratio(&self) -> f64 {
        self.mesh_peak as f64 / self.baseline_peak.max(1) as f64
    }

    /// Runtime ratio Mesh/baseline (> 1 means Mesh is slower).
    pub fn time_ratio(&self) -> f64 {
        self.mesh_time.as_secs_f64() / self.baseline_time.as_secs_f64().max(1e-9)
    }
}

/// Runs the whole suite under Mesh and the baseline, returning per-row
/// comparisons (the §6.2.3 table).
pub fn run_spec_suite(arena_bytes: usize, seed: u64) -> Vec<SpecComparison> {
    SPEC_SUITE
        .iter()
        .map(|profile| {
            let mut baseline = AllocatorKind::MeshNoMesh.build(arena_bytes, seed);
            let rb = run_spec_profile(&mut baseline, profile, seed);
            let mut mesh = AllocatorKind::MeshFull.build(arena_bytes, seed);
            let rm = run_spec_profile(&mut mesh, profile, seed);
            SpecComparison {
                name: profile.name,
                baseline_peak: rb.peak_heap_bytes,
                mesh_peak: rm.peak_heap_bytes,
                baseline_time: rb.runtime,
                mesh_time: rm.runtime,
            }
        })
        .collect()
}

/// Geomean memory and time ratios across comparison rows (the paper's
/// suite-level −2.4% / +0.7% numbers).
pub fn suite_geomeans(rows: &[SpecComparison]) -> (f64, f64) {
    let mem: Vec<f64> = rows.iter().map(|r| r.memory_ratio()).collect();
    let time: Vec<f64> = rows.iter().map(|r| r.time_ratio()).collect();
    (geomean(&mem), geomean(&time))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shrunk(profile: &SpecProfile) -> SpecProfile {
        SpecProfile {
            live_target: profile.live_target / 16,
            churn_ops: profile.churn_ops / 16,
            phase_temp_bytes: profile.phase_temp_bytes / 16,
            phases: profile.phases.min(4),
            ..*profile
        }
    }

    #[test]
    fn size_mix_respects_ranges() {
        let mix = SizeMix(&[(1, 10, 20), (1, 100, 200)]);
        let mut rng = Rng::with_seed(1);
        for _ in 0..1000 {
            let s = mix.sample(&mut rng);
            assert!((10..=20).contains(&s) || (100..=200).contains(&s));
        }
    }

    #[test]
    fn suite_has_twelve_members_like_specint() {
        assert_eq!(SPEC_SUITE.len(), 12);
        let names: std::collections::HashSet<_> =
            SPEC_SUITE.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 12, "names are unique");
    }

    #[test]
    fn profile_run_balances() {
        let mut alloc = AllocatorKind::MeshFull.build(256 << 20, 9);
        let p = shrunk(&SPEC_SUITE[4]); // gobmk-like, small
        let r = run_spec_profile(&mut alloc, &p, 9);
        assert!(r.peak_heap_bytes > 0);
        assert!(r.timeline.len() >= 3);
        assert_eq!(alloc.live_bytes(), 0);
    }

    #[test]
    fn perlbench_like_profile_benefits_from_meshing() {
        let p = shrunk(&SPEC_SUITE[0]);
        let mut base = AllocatorKind::MeshNoMesh.build(256 << 20, 5);
        let rb = run_spec_profile(&mut base, &p, 5);
        let mut mesh = AllocatorKind::MeshFull.build(256 << 20, 5);
        let rm = run_spec_profile(&mut mesh, &p, 5);
        // Mean (not peak) improves: the tail phase frees 80% and meshing
        // compacts what remains.
        assert!(
            rm.timeline.final_heap_bytes() < rb.timeline.final_heap_bytes(),
            "mesh {} !< baseline {}",
            rm.timeline.final_heap_bytes(),
            rb.timeline.final_heap_bytes()
        );
    }

    #[test]
    fn comparison_ratios() {
        let c = SpecComparison {
            name: "x",
            baseline_peak: 100,
            mesh_peak: 85,
            baseline_time: Duration::from_millis(100),
            mesh_time: Duration::from_millis(104),
        };
        assert!((c.memory_ratio() - 0.85).abs() < 1e-12);
        assert!((c.time_ratio() - 1.04).abs() < 1e-9);
        let (gm, gt) = suite_geomeans(&[c]);
        assert!((gm - 0.85).abs() < 1e-9 && (gt - 1.04).abs() < 1e-9);
    }
}
