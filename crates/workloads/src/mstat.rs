//! `mstat` analog (§6.1): memory-usage time series for a program under a
//! given allocator.
//!
//! The paper's `mstat` runs the program in a memory cgroup and polls
//! physical memory at a constant frequency. Here the workload *is*
//! in-process, so the timeline records the allocator's committed-page
//! footprint (the same physical quantity the cgroup reports; see
//! DESIGN.md) plus live bytes and — when procfs is available — process
//! RSS as a secondary series.

use mesh_core::sys::process_rss_kb;
use std::fmt;
use std::time::{Duration, Instant};

/// One sampled point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Time since the timeline started.
    pub elapsed: Duration,
    /// Allocator physical footprint in bytes (committed pages).
    pub heap_bytes: usize,
    /// Live application bytes at the sample.
    pub live_bytes: usize,
    /// Process RSS in KiB (secondary; None without procfs).
    pub rss_kb: Option<u64>,
}

/// A recorded memory timeline, the data behind Figures 6–8.
///
/// # Examples
///
/// ```
/// use mesh_workloads::mstat::MemoryTimeline;
///
/// let mut tl = MemoryTimeline::start("demo");
/// tl.record(4096 * 10, 4096 * 6);
/// tl.record(4096 * 4, 4096 * 3);
/// assert_eq!(tl.peak_heap_bytes(), 4096 * 10);
/// assert!(tl.mean_heap_bytes() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryTimeline {
    label: String,
    start: Instant,
    samples: Vec<Sample>,
}

impl MemoryTimeline {
    /// Starts an empty timeline labelled `label` (e.g. the allocator name).
    pub fn start(label: impl Into<String>) -> Self {
        MemoryTimeline {
            label: label.into(),
            start: Instant::now(),
            samples: Vec::new(),
        }
    }

    /// The timeline's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records a sample of `heap_bytes` committed and `live_bytes` live.
    pub fn record(&mut self, heap_bytes: usize, live_bytes: usize) {
        self.samples.push(Sample {
            elapsed: self.start.elapsed(),
            heap_bytes,
            live_bytes,
            rss_kb: process_rss_kb(),
        });
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak heap footprint over the run (the SPEC table's metric).
    pub fn peak_heap_bytes(&self) -> usize {
        self.samples.iter().map(|s| s.heap_bytes).max().unwrap_or(0)
    }

    /// Mean heap footprint over the run (Figures 6–8's headline metric).
    pub fn mean_heap_bytes(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.heap_bytes as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Final heap footprint.
    pub fn final_heap_bytes(&self) -> usize {
        self.samples.last().map(|s| s.heap_bytes).unwrap_or(0)
    }

    /// Renders the series as CSV (`elapsed_ms,heap_kb,live_kb,rss_kb`),
    /// suitable for re-plotting the paper's figures.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("elapsed_ms,heap_kb,live_kb,rss_kb\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{}\n",
                s.elapsed.as_millis(),
                s.heap_bytes / 1024,
                s.live_bytes / 1024,
                s.rss_kb.map(|r| r.to_string()).unwrap_or_default()
            ));
        }
        out
    }
}

impl fmt::Display for MemoryTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} samples, mean {:.1} MiB, peak {:.1} MiB",
            self.label,
            self.samples.len(),
            self.mean_heap_bytes() / (1024.0 * 1024.0),
            self.peak_heap_bytes() as f64 / (1024.0 * 1024.0),
        )
    }
}

/// Formats a byte count as mebibytes with one decimal (report helper).
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Percentage change from `baseline` to `value` (negative = reduction),
/// as reported throughout §6 ("reduces memory consumption by 16%").
pub fn percent_change(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (value - baseline) / baseline * 100.0
}

/// Geometric mean of a slice of positive ratios (the SPEC table metric).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_statistics() {
        let mut tl = MemoryTimeline::start("t");
        for kb in [10usize, 20, 30, 20] {
            tl.record(kb * 1024, kb * 512);
        }
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.peak_heap_bytes(), 30 * 1024);
        assert_eq!(tl.final_heap_bytes(), 20 * 1024);
        assert!((tl.mean_heap_bytes() - 20.0 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_is_safe() {
        let tl = MemoryTimeline::start("empty");
        assert!(tl.is_empty());
        assert_eq!(tl.peak_heap_bytes(), 0);
        assert_eq!(tl.mean_heap_bytes(), 0.0);
        assert_eq!(tl.final_heap_bytes(), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tl = MemoryTimeline::start("csv");
        tl.record(2048, 1024);
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("elapsed_ms,heap_kb"));
        assert!(lines[1].contains(",2,1,"));
    }

    #[test]
    fn percent_change_signs() {
        assert!((percent_change(100.0, 84.0) - -16.0).abs() < 1e-9);
        assert!((percent_change(100.0, 139.0) - 39.0).abs() < 1e-9);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn display_is_informative() {
        let mut tl = MemoryTimeline::start("Mesh");
        tl.record(5 << 20, 1 << 20);
        let s = tl.to_string();
        assert!(s.contains("Mesh") && s.contains("1 samples"));
    }
}
