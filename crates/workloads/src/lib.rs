//! # mesh-workloads
//!
//! The evaluation substrate for the Mesh reproduction: every workload §6
//! of *Mesh: Compacting Memory Management for C/C++ Applications* (PLDI
//! 2019) measures, rebuilt as deterministic in-process drivers, plus the
//! measurement tooling (`mstat` analog) and the classical-allocator
//! baselines the paper's claims are framed against.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | §6.1 `mstat` measurement tool | [`mstat`] |
//! | §6.2.1 Firefox / Speedometer 2.0 (Figure 6) | [`firefox`] |
//! | §6.2.2 Redis + activedefrag (Figure 7) | [`redis`] |
//! | §6.2.3 SPECint 2006 table | [`spec`] |
//! | §6.3 Ruby string microbenchmark (Figure 8) | [`ruby`] |
//! | §1 Robson worst case + classical baselines | [`robson`], [`firstfit`], [`buddy`] |
//! | Allocation-trace record/replay + generators | [`trace`] |
//! | Allocator-under-test drivers | [`driver`] |
//!
//! The real Firefox/Redis/SPEC/Ruby binaries cannot be vendored; each
//! driver reproduces the *allocation stream* the paper describes (sizes,
//! lifetimes, threading, phases) so the allocator sees the same workload
//! shape. See DESIGN.md for the substitution argument.
//!
//! ## Example: reproduce the Redis experiment at 1/10 scale
//!
//! ```no_run
//! use mesh_workloads::driver::AllocatorKind;
//! use mesh_workloads::redis::{run_redis, RedisConfig};
//!
//! let cfg = RedisConfig::default(); // paper parameters at 0.1×
//! let mut mesh = AllocatorKind::MeshFull.build(1 << 30, 42);
//! let report = run_redis(&mut mesh, &cfg);
//! println!("{}", report.timeline.to_csv());
//! ```

pub mod buddy;
pub mod driver;
pub mod firefox;
pub mod firstfit;
pub mod mstat;
pub mod redis;
pub mod robson;
pub mod ruby;
pub mod spec;
pub mod trace;

pub use driver::{AllocatorKind, TestAllocator};
pub use mstat::MemoryTimeline;
