//! The Firefox/Speedometer workload (§6.2.1, Figure 6).
//!
//! Speedometer 2.0 runs a series of small "todo" web apps, stressing the
//! DOM, layout, CSS and JavaScript subsystems — in Firefox these are
//! multi-threaded even for a single page. The model here: several worker
//! threads (one per subsystem), each repeatedly running a *test* that
//!
//! 1. **builds** a burst of DOM-node-sized objects (a mixture of small
//!    structures and medium strings),
//! 2. **interacts** — frees a random subset and allocates replacements
//!    (adding/completing todos), and
//! 3. **tears down** the app, keeping a small long-lived residue
//!    (caches), which is what fragments the heap over time.
//!
//! A sampler thread records the heap footprint at a constant frequency
//! while the workers run, plus a cooldown period afterwards — exactly how
//! the paper's `mstat` produced Figure 6. The benchmark "score" is tests
//! completed per second (the Speedometer-score analog used to check the
//! <1% overhead claim).

use crate::driver::AllocatorKind;
use crate::mstat::MemoryTimeline;
use mesh_core::rng::Rng;
use mesh_core::Mesh;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the browser workload.
#[derive(Debug, Clone)]
pub struct FirefoxConfig {
    /// Worker threads (browser subsystems).
    pub threads: usize,
    /// Tests (todo apps) per thread.
    pub tests_per_thread: usize,
    /// Objects allocated per build burst.
    pub burst_objects: usize,
    /// Fraction kept as long-lived residue after teardown.
    pub residue_fraction: f64,
    /// Sampler period.
    pub sample_period: Duration,
    /// Cooldown samples recorded after the workers finish (the paper uses
    /// a 15-second cooldown).
    pub cooldown_samples: usize,
    /// Meshing rate limit for the run (scaled down with the run length).
    pub mesh_period: Duration,
    /// Base PRNG seed.
    pub seed: u64,
}

impl Default for FirefoxConfig {
    fn default() -> Self {
        FirefoxConfig {
            threads: 4,
            tests_per_thread: 120,
            burst_objects: 6_000,
            residue_fraction: 0.10,
            sample_period: Duration::from_millis(5),
            cooldown_samples: 20,
            // The paper's rate limit is 100 ms over a ~2-minute benchmark;
            // this run compresses the same allocation work into a few
            // seconds, so the limit is scaled to keep a comparable
            // passes-per-test cadence without serializing the workers
            // behind back-to-back passes.
            mesh_period: Duration::from_millis(25),
            seed: 0xf1ef0,
        }
    }
}

/// Results of one browser-workload run.
#[derive(Debug, Clone)]
pub struct FirefoxReport {
    /// Allocator label.
    pub label: String,
    /// The Figure 6 memory timeline.
    pub timeline: MemoryTimeline,
    /// Wall time of the working phase.
    pub runtime: Duration,
    /// Tests per second across all threads (Speedometer-score analog).
    pub score: f64,
    /// Mean heap footprint.
    pub mean_heap_bytes: f64,
    /// Peak heap footprint.
    pub peak_heap_bytes: usize,
    /// Meshing passes run during the working phase.
    pub mesh_passes: u64,
    /// Span pairs meshed during the working phase.
    pub spans_meshed: u64,
    /// Wall time spent inside meshing passes during the working phase
    /// (these run on worker threads and hold the global lock, so they are
    /// the score-relevant meshing cost).
    pub mesh_time: Duration,
    /// Pages released during the working phase (meshing + purges); each
    /// refaults on its next touch, on the workers' clock.
    pub pages_released: u64,
}

/// DOM-ish object-size distribution: mostly small nodes, some strings.
fn dom_size(rng: &mut Rng) -> usize {
    match rng.below(10) {
        0..=5 => 32 + rng.below(96) as usize,        // nodes, handles
        6..=8 => 128 + rng.below(896) as usize,      // strings, styles
        _ => 1024 + rng.below(3072) as usize,        // buffers
    }
}

/// Runs the browser workload under `kind`, returning the report.
///
/// # Panics
///
/// Panics if `kind` is [`AllocatorKind::System`] (it cannot report heap
/// footprints) or if the arena is exhausted.
pub fn run_firefox(kind: AllocatorKind, arena_bytes: usize, cfg: &FirefoxConfig) -> FirefoxReport {
    assert!(
        kind != AllocatorKind::System,
        "the browser workload needs footprint reporting"
    );
    let driver = kind.build(arena_bytes, cfg.seed);
    let mesh: Mesh = driver.mesh_handle().expect("mesh-backed kind");
    mesh.set_mesh_period(cfg.mesh_period);

    let done = Arc::new(AtomicBool::new(false));
    let tests_done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    // Worker threads: one per browser subsystem.
    let mut workers = Vec::new();
    for tid in 0..cfg.threads {
        let mesh = mesh.clone();
        let cfg = cfg.clone();
        let tests_done = Arc::clone(&tests_done);
        workers.push(std::thread::spawn(move || {
            let mut heap = mesh.thread_heap();
            let mut rng = Rng::with_seed(cfg.seed ^ (tid as u64) << 32);
            let mut residue: Vec<usize> = Vec::new();
            for test in 0..cfg.tests_per_thread {
                // Build phase.
                let mut app: Vec<usize> = Vec::with_capacity(cfg.burst_objects);
                for _ in 0..cfg.burst_objects {
                    let size = dom_size(&mut rng);
                    let p = heap.malloc(size);
                    assert!(!p.is_null());
                    unsafe { std::ptr::write_bytes(p, 0xD0, size.min(32)) };
                    app.push(p as usize);
                }
                // Interact: complete/delete half the todos, add a quarter.
                for _ in 0..cfg.burst_objects / 2 {
                    let i = rng.below(app.len() as u32) as usize;
                    let ptr = app.swap_remove(i);
                    unsafe { heap.free(ptr as *mut u8) };
                }
                for _ in 0..cfg.burst_objects / 4 {
                    let p = heap.malloc(dom_size(&mut rng));
                    app.push(p as usize);
                }
                // Teardown: keep a residue (caches, interned data).
                let keep = (app.len() as f64 * cfg.residue_fraction) as usize;
                for (i, ptr) in app.drain(..).enumerate() {
                    if i < keep {
                        residue.push(ptr);
                    } else {
                        unsafe { heap.free(ptr as *mut u8) };
                    }
                }
                // Old residues age out every few tests.
                if test % 8 == 7 {
                    let half = residue.len() / 2;
                    for ptr in residue.drain(..half) {
                        unsafe { heap.free(ptr as *mut u8) };
                    }
                }
                tests_done.fetch_add(1, Ordering::Relaxed);
            }
            for ptr in residue.drain(..) {
                unsafe { heap.free(ptr as *mut u8) };
            }
        }));
    }

    // Sampler thread (the mstat analog).
    let sampler = {
        let mesh = mesh.clone();
        let done = Arc::clone(&done);
        let period = cfg.sample_period;
        let label = kind.label().to_string();
        std::thread::spawn(move || {
            let mut timeline = MemoryTimeline::start(label);
            while !done.load(Ordering::Acquire) {
                timeline.record(mesh.heap_bytes(), mesh.stats().live_bytes);
                std::thread::sleep(period);
            }
            timeline
        })
    };

    for w in workers {
        w.join().expect("worker panicked");
    }
    let runtime = start.elapsed();
    let working_stats = mesh.stats();
    done.store(true, Ordering::Release);
    let mut timeline = sampler.join().expect("sampler panicked");

    // Cooldown: the paper records 15 further seconds after the benchmark.
    for _ in 0..cfg.cooldown_samples {
        std::thread::sleep(cfg.sample_period);
        mesh.mesh_now();
        timeline.record(mesh.heap_bytes(), mesh.stats().live_bytes);
    }

    let score = tests_done.load(Ordering::Relaxed) as f64 / runtime.as_secs_f64();
    FirefoxReport {
        label: kind.label().to_string(),
        runtime,
        score,
        mean_heap_bytes: timeline.mean_heap_bytes(),
        peak_heap_bytes: timeline.peak_heap_bytes(),
        mesh_passes: working_stats.mesh_passes,
        spans_meshed: working_stats.spans_meshed,
        mesh_time: Duration::from_nanos(working_stats.mesh_nanos),
        pages_released: working_stats.mesh_pages_released + working_stats.pages_purged,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FirefoxConfig {
        FirefoxConfig {
            threads: 2,
            tests_per_thread: 6,
            burst_objects: 800,
            cooldown_samples: 3,
            sample_period: Duration::from_millis(2),
            ..FirefoxConfig::default()
        }
    }

    #[test]
    fn multithreaded_run_completes() {
        let r = run_firefox(AllocatorKind::MeshFull, 512 << 20, &tiny());
        assert!(r.score > 0.0);
        assert!(r.peak_heap_bytes > 0);
        assert!(!r.timeline.is_empty());
    }

    #[test]
    fn meshing_does_not_lose_objects_under_concurrency() {
        // The workload asserts on allocation success and frees everything;
        // a corrupted freelist would explode. Run both configs.
        for kind in [AllocatorKind::MeshFull, AllocatorKind::MeshNoMesh] {
            let r = run_firefox(kind, 512 << 20, &tiny());
            assert!(r.runtime > Duration::ZERO, "{kind}");
        }
    }

    #[test]
    fn mesh_reduces_mean_heap_vs_baseline() {
        let cfg = FirefoxConfig {
            threads: 2,
            tests_per_thread: 12,
            burst_objects: 2000,
            ..tiny()
        };
        let full = run_firefox(AllocatorKind::MeshFull, 512 << 20, &cfg);
        let base = run_firefox(AllocatorKind::MeshNoMesh, 512 << 20, &cfg);
        // The residue pattern fragments; meshing should not do *worse*.
        // (Strict reduction is asserted at bench scale, not test scale.)
        assert!(
            full.mean_heap_bytes <= base.mean_heap_bytes * 1.10,
            "mesh mean {} vs baseline mean {}",
            full.mean_heap_bytes,
            base.mean_heap_bytes
        );
    }
}
