//! The Ruby string microbenchmark (§6.3, Figure 8).
//!
//! The paper's microbenchmark exercises a *regular* allocation pattern —
//! the adversarial case for meshing without randomization: repeatedly
//! allocate a batch of fixed-size strings, retain references to 25% of
//! them, drop the rest, and double the string length each iteration
//! (simulating accumulating results from an API and periodically
//! filtering).
//!
//! The retained quarter is chosen *deterministically* (every fourth
//! allocation), so a sequential (no-rand) allocator leaves survivors at
//! identical offsets in every span — unmeshable — while randomized
//! allocation scatters them, letting meshing reclaim the other spans.
//! This reproduces Figure 8's separation between "Mesh", "Mesh (no
//! rand)", and "Mesh (no meshing)".

use crate::driver::TestAllocator;
use crate::mstat::MemoryTimeline;
use std::time::{Duration, Instant};

/// Parameters of the Ruby-style string benchmark.
#[derive(Debug, Clone)]
pub struct RubyConfig {
    /// Bytes of string content allocated per round (paper: 128 MB total
    /// working set).
    pub round_budget: usize,
    /// String length of the first round; doubles each round.
    pub start_len: usize,
    /// Number of doubling rounds.
    pub rounds: usize,
    /// Retain one allocation in `retain_every` (paper: 25% ⇒ 4).
    pub retain_every: usize,
    /// Survivors die after this many further rounds (keeps the live set
    /// bounded, as the paper's fixed 128 MB requirement implies).
    pub survivor_lifetime: usize,
    /// Timeline samples per round.
    pub samples_per_round: usize,
}

impl Default for RubyConfig {
    fn default() -> Self {
        RubyConfig {
            round_budget: 8 << 20,
            start_len: 64,
            rounds: 8,
            retain_every: 4,
            survivor_lifetime: 2,
            samples_per_round: 8,
        }
    }
}

impl RubyConfig {
    /// A paper-scale configuration (128 MB working set).
    pub fn paper() -> Self {
        RubyConfig {
            round_budget: 128 << 20,
            ..RubyConfig::default()
        }
    }

    /// Scales the per-round budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.round_budget = bytes;
        self
    }
}

/// Results of one Ruby-benchmark run.
#[derive(Debug, Clone)]
pub struct RubyReport {
    /// Allocator label.
    pub label: String,
    /// The Figure 8 memory timeline.
    pub timeline: MemoryTimeline,
    /// Total wall time (the figure's x-axis; overhead metric).
    pub runtime: Duration,
    /// Mean heap footprint across samples (the headline −18% metric).
    pub mean_heap_bytes: f64,
    /// Peak heap footprint.
    pub peak_heap_bytes: usize,
}

/// Runs the string-accumulation benchmark against `alloc`.
///
/// After each round's drop phase the allocator is given one meshing
/// opportunity (`mesh_now`), standing in for the rate-limited background
/// meshing that fires during the paper's multi-second rounds; for
/// non-meshing configurations it is a no-op.
pub fn run_ruby(alloc: &mut TestAllocator, cfg: &RubyConfig) -> RubyReport {
    let label = alloc.kind().label().to_string();
    let mut timeline = MemoryTimeline::start(label.clone());
    let start = Instant::now();
    // Survivor generations: survivors[r % lifetime] die at round r.
    let mut generations: Vec<Vec<(usize, usize)>> =
        vec![Vec::new(); cfg.survivor_lifetime.max(1)];

    for round in 0..cfg.rounds {
        let len = cfg.start_len << round;
        let count = (cfg.round_budget / len).max(cfg.retain_every);
        let sample_gap = (count / cfg.samples_per_round.max(1)).max(1);

        // Free the generation whose lifetime expires this round.
        let slot = round % generations.len();
        for (ptr, plen) in generations[slot].drain(..) {
            unsafe {
                // Integrity: survivors must still carry their fill byte.
                assert_eq!(*(ptr as *const u8), (plen % 251) as u8);
                alloc.free(ptr as *mut u8);
            }
        }

        // Allocation phase: `count` strings of `len` bytes.
        let mut batch: Vec<usize> = Vec::with_capacity(count);
        for i in 0..count {
            let p = alloc.malloc(len);
            unsafe { std::ptr::write_bytes(p, (len % 251) as u8, len) };
            batch.push(p as usize);
            if i % sample_gap == 0 {
                timeline.record(alloc.heap_bytes().unwrap_or(0), alloc.live_bytes());
            }
        }

        // Drop phase: free 75% (deterministic pattern — see module docs),
        // retain every `retain_every`-th string.
        let mut survivors = Vec::with_capacity(count / cfg.retain_every + 1);
        for (i, ptr) in batch.into_iter().enumerate() {
            if i % cfg.retain_every == 0 {
                survivors.push((ptr, len));
            } else {
                unsafe { alloc.free(ptr as *mut u8) };
            }
        }
        generations[slot] = survivors;
        timeline.record(alloc.heap_bytes().unwrap_or(0), alloc.live_bytes());

        // One background-meshing opportunity per round.
        alloc.mesh_now();
        timeline.record(alloc.heap_bytes().unwrap_or(0), alloc.live_bytes());
    }

    // Drain remaining survivors.
    for gen in &mut generations {
        for (ptr, _) in gen.drain(..) {
            unsafe { alloc.free(ptr as *mut u8) };
        }
    }
    let runtime = start.elapsed();
    RubyReport {
        label,
        runtime,
        mean_heap_bytes: timeline.mean_heap_bytes(),
        peak_heap_bytes: timeline.peak_heap_bytes(),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::AllocatorKind;

    fn tiny() -> RubyConfig {
        RubyConfig {
            round_budget: 1 << 20,
            rounds: 6,
            ..RubyConfig::default()
        }
    }

    #[test]
    fn completes_and_balances(){
        let mut alloc = AllocatorKind::MeshFull.build(128 << 20, 1);
        let r = run_ruby(&mut alloc, &tiny());
        assert!(r.peak_heap_bytes > 0);
        assert!(r.timeline.len() > 10);
        assert_eq!(alloc.live_bytes(), 0);
    }

    #[test]
    fn figure8_ordering_mesh_beats_no_rand_beats_nothing() {
        // The paper's key qualitative result: randomized meshing yields a
        // significantly smaller mean heap than no-rand meshing, which in
        // turn is close to no meshing at all.
        let cfg = tiny();
        let mean = |kind: AllocatorKind| {
            let mut a = kind.build(128 << 20, 7);
            run_ruby(&mut a, &cfg).mean_heap_bytes
        };
        let full = mean(AllocatorKind::MeshFull);
        let norand = mean(AllocatorKind::MeshNoRand);
        let nomesh = mean(AllocatorKind::MeshNoMesh);
        assert!(
            full < norand * 0.95,
            "randomized meshing ({full:.0}) should beat no-rand ({norand:.0})"
        );
        assert!(
            norand < nomesh * 1.15,
            "no-rand ({norand:.0}) should be within ~15% of no-mesh ({nomesh:.0})"
        );
    }

    #[test]
    fn regular_pattern_defeats_unrandomized_meshing() {
        // With sequential allocation and every-4th retention, survivors sit
        // at identical offsets: almost nothing should mesh.
        let mut a = AllocatorKind::MeshNoRand.build(128 << 20, 3);
        let _ = run_ruby(&mut a, &tiny());
        let stats = a.mesh_handle().unwrap().stats();
        let full_stats = {
            let mut b = AllocatorKind::MeshFull.build(128 << 20, 3);
            let _ = run_ruby(&mut b, &tiny());
            b.mesh_handle().unwrap().stats()
        };
        assert!(
            stats.mesh_pages_released < full_stats.mesh_pages_released / 4,
            "no-rand released {} pages, full released {}",
            stats.mesh_pages_released,
            full_stats.mesh_pages_released
        );
    }
}
