//! # mesh
//!
//! Umbrella crate for the Rust reproduction of *Mesh: Compacting Memory
//! Management for C/C++ Applications* (Powers, Tench, Berger, McGregor —
//! PLDI 2019).
//!
//! The implementation lives in three crates, re-exported here:
//!
//! * [`core`] — the Mesh allocator itself: shuffle vectors, MiniHeaps,
//!   thread-local and global heaps, the meshable arena, and the
//!   SplitMesher compaction engine.
//! * [`graph`] — the paper's §5 theory kit: meshing graphs,
//!   MinCliqueCover/Matching solvers (including Edmonds' blossom
//!   algorithm), Erdős–Renyi contrast models, and the probability
//!   engine.
//! * [`workloads`] — the §6 evaluation drivers: Redis-, Firefox-,
//!   Ruby- and SPEC-like workloads, allocation-trace record/replay,
//!   classical-allocator simulators, and the `mstat` measurement
//!   analog.
//!
//! ## Quickstart
//!
//! ```
//! use mesh::core::{Mesh, MeshConfig};
//!
//! # fn main() -> Result<(), mesh::core::MeshError> {
//! let mesh = Mesh::new(MeshConfig::default().seed(42))?;
//! let p = mesh.malloc(64);
//! assert!(!p.is_null());
//! unsafe { mesh.free(p) };
//! # Ok(())
//! # }
//! ```

pub use mesh_core as core;
pub use mesh_graph as graph;
pub use mesh_workloads as workloads;
